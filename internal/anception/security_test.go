package anception

import (
	"bytes"
	"errors"
	"testing"

	"anception/internal/abi"
	"anception/internal/android"
	"anception/internal/kernel"
)

// rootShellAfterGingerBreak runs the GingerBreak trigger against whichever
// kernel hosts vold and returns the spawned root shell, or nil.
func rootShellAfterGingerBreak(t *testing.T, d *Device, mal *Proc) *kernel.Task {
	t.Helper()
	// Drop the payload in the malware's private directory (redirected to
	// the CVM under Anception).
	fd, err := mal.Open("exploit", abi.OWrOnly|abi.OCreat, 0o700)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(kernel.AttackerPayloadMagic + "\nGingerBreak stage 2")
	if _, err := mal.Write(fd, payload); err != nil {
		t.Fatal(err)
	}
	if err := mal.Close(fd); err != nil {
		t.Fatal(err)
	}

	// Send the crafted netlink message with the magic negative index.
	sockFD, err := mal.Socket(3 /* AFNetlink */, 2 /* SockDgram */, android.NetlinkVoldProto)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("GB:-1073741821:" + mal.App.Info.DataDir + "/exploit")
	if err := mal.SendNetlink(sockFD, msg); err != nil {
		t.Fatal(err)
	}

	vold := d.DelegableServices().Vold
	shells := vold.RootShells()
	if len(shells) == 0 {
		return nil
	}
	return shells[0]
}

// TestExploitationChannels is E12/Figure 1: a low-assurance app escalates
// via vold; on native Android it then reads the high-assurance app's
// memory, on Anception it can only reach the proxy.
func TestExploitationChannels(t *testing.T) {
	secret := []byte("bank-password-hunter2")

	steal := func(mode Mode) (gotRoot bool, stolen bool) {
		d := bootDevice(t, mode)
		hi := installAndLaunch(t, d, "com.bank")
		if _, err := hi.PlantSecret(secret); err != nil {
			t.Fatal(err)
		}
		lo := installAndLaunch(t, d, "com.malware")

		shell := rootShellAfterGingerBreak(t, d, lo)
		if shell == nil {
			return false, false
		}
		// The attacker-controlled root shell scans /proc for the bank app
		// and dumps its memory.
		shellKernel := d.AppKernel()
		if mode == ModeAnception {
			shellKernel = d.Guest // the shell exists only inside the CVM
		}
		sh := d.LaunchServiceShell(shellKernel, shell)
		victimPID := findPIDByComm(sh, "com.bank")
		if victimPID == 0 {
			// Under Anception the host app is invisible; try the proxy.
			victimPID = findPIDByComm(sh, "com.bank:proxy")
		}
		if victimPID == 0 {
			return true, false
		}
		memFD, err := sh.Open("/proc/"+itoa(victimPID)+"/mem", abi.ORdOnly, 0)
		if err != nil {
			return true, false
		}
		dump, err := sh.Pread(memFD, 64, int64(kernel.AddrHeapBase))
		if err != nil {
			return true, false
		}
		return true, bytes.Contains(dump, secret)
	}

	if gotRoot, stolen := steal(ModeNative); !gotRoot || !stolen {
		t.Fatalf("native: root=%v stolen=%v, want both (the attack works on stock Android)", gotRoot, stolen)
	}
	if gotRoot, stolen := steal(ModeAnception); !gotRoot || stolen {
		t.Fatalf("anception: root=%v stolen=%v, want root-in-CVM without theft", gotRoot, stolen)
	}
}

// TestBankingAppConfidentiality drives the full Figure 2 scenario: input
// through the host UI, TLS-style exchange through the CVM, concurrent
// compromised container.
func TestBankingAppConfidentiality(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	var serverSaw [][]byte
	d.RegisterRemote("bank.com:443", func(req []byte) []byte {
		serverSaw = append(serverSaw, req)
		return []byte("TLS:OK")
	})

	bank := installAndLaunch(t, d, "com.bank")
	bfd, err := bank.OpenBinder()
	if err != nil {
		t.Fatal(err)
	}

	// The user types the password; it flows through the host-side WM.
	d.QueueInput(bank.App, []byte("pwd:hunter2"))
	input, err := bank.WaitInput(bfd)
	if err != nil || string(input) != "pwd:hunter2" {
		t.Fatalf("input = %q, %v", input, err)
	}

	// The app keeps it only in host memory and sends ciphertext out.
	if _, err := bank.PlantSecret(input); err != nil {
		t.Fatal(err)
	}
	sock, err := bank.Socket(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := bank.Connect(sock, "bank.com:443"); err != nil {
		t.Fatal(err)
	}
	ciphertext := xorEncrypt(input, 0x5A)
	if _, err := bank.Send(sock, ciphertext); err != nil {
		t.Fatal(err)
	}
	if resp, err := bank.Recv(sock, 16); err != nil || string(resp) != "TLS:OK" {
		t.Fatalf("recv = %q, %v", resp, err)
	}

	// The container saw only ciphertext.
	for _, req := range serverSaw {
		if bytes.Contains(req, []byte("hunter2")) {
			t.Fatal("plaintext password crossed into the container")
		}
	}

	// A compromised CVM cannot read the password from the proxy: the
	// proxy address space never held it.
	proxyTask := d.Proxies.ProxyFor(bank.Task.PID)
	dump, err := proxyTask.AS.ReadBytes(d.Guest.Region(), kernel.AddrHeapBase, 64)
	if err == nil && bytes.Contains(dump, []byte("hunter2")) {
		t.Fatal("password present in proxy memory")
	}

	// And the CVM cannot see the queued UI input: the WM runs on the
	// host, outside the guest's physical region.
	wmTask := d.HostServices.WM.Task()
	if _, err := wmTask.AS.ReadBytes(d.Guest.Region(), kernel.AddrHeapBase, 16); !errors.Is(err, abi.EPERM) {
		t.Fatalf("guest-confined access to WM memory: %v, want EPERM", err)
	}
}

// TestGuestCannotReadHostAppMemory is the memory-isolation invariant at
// the physical-frame level.
func TestGuestCannotReadHostAppMemory(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	hi := installAndLaunch(t, d, "com.bank")
	addr, err := hi.PlantSecret([]byte("s3cr3t"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hi.Task.AS.ReadBytes(d.Guest.Region(), addr, 6); !errors.Is(err, abi.EPERM) {
		t.Fatalf("guest-region accessor read host app memory: %v", err)
	}
	// The host accessor works fine.
	got, err := hi.Task.AS.ReadBytes(d.Host.Region(), addr, 6)
	if err != nil || string(got) != "s3cr3t" {
		t.Fatalf("host read = %q, %v", got, err)
	}
}

// TestClassicalVMExposesCoResidentApps shows the Section V-B comparison:
// classical virtualization protects the host OS but not apps from each
// other — HiApp's memory is inside the same guest the attacker roots.
func TestClassicalVMExposesCoResidentApps(t *testing.T) {
	d := bootDevice(t, ModeClassicalVM)
	secret := []byte("classical-secret")
	hi := installAndLaunch(t, d, "com.bank")
	if _, err := hi.PlantSecret(secret); err != nil {
		t.Fatal(err)
	}
	lo := installAndLaunch(t, d, "com.malware")
	shell := rootShellAfterGingerBreak(t, d, lo)
	if shell == nil {
		t.Fatal("gingerbreak failed inside the classical VM")
	}
	sh := d.LaunchServiceShell(d.Guest, shell)
	pid := findPIDByComm(sh, "com.bank")
	if pid == 0 {
		t.Fatal("bank app not visible in guest")
	}
	memFD, err := sh.Open("/proc/"+itoa(pid)+"/mem", abi.ORdOnly, 0)
	if err != nil {
		t.Fatal(err)
	}
	dump, err := sh.Pread(memFD, 64, int64(kernel.AddrHeapBase))
	if err != nil || !bytes.Contains(dump, secret) {
		t.Fatalf("classical VM should NOT protect co-resident apps; dump=%q err=%v", dump, err)
	}
	// But the host kernel outside the VM is untouched.
	if d.Host.Compromised() != nil {
		t.Fatal("host kernel compromised through the guest")
	}
}

// TestCVMPanicLeavesHostRunning verifies crash containment: a guest panic
// (e.g. the failed CVE-2009-2692 under Anception) kills proxies but not
// the host.
func TestCVMPanicLeavesHostRunning(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	app := installAndLaunch(t, d, "com.app")
	d.Guest.Panic("induced")
	if d.Host.Panicked() != "" {
		t.Fatal("host panicked with the guest")
	}
	if app.Task.CurrentState() != kernel.TaskRunning {
		t.Fatal("host app died with the CVM")
	}
	// Host-class calls still work; redirected calls fail gracefully.
	if pid := app.Getpid(); pid != app.Task.PID {
		t.Fatal("host syscalls broken after CVM crash")
	}
	if _, err := app.Open("file", abi.OWrOnly|abi.OCreat, 0o600); err == nil {
		t.Fatal("redirected call succeeded on a dead CVM")
	}
}

func findPIDByComm(sh *Proc, comm string) int {
	listing, err := sh.Getdents("/proc")
	if err != nil {
		return 0
	}
	for _, entry := range splitLines(string(listing)) {
		pid := atoi(entry)
		if pid == 0 {
			continue
		}
		fd, err := sh.Open("/proc/"+entry+"/cmdline", abi.ORdOnly, 0)
		if err != nil {
			continue
		}
		data, err := sh.Read(fd, 128)
		_ = sh.Close(fd)
		if err == nil && string(data) == comm {
			return pid
		}
	}
	return 0
}

func xorEncrypt(data []byte, key byte) []byte {
	out := make([]byte, len(data))
	for i, b := range data {
		out[i] = b ^ key
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func atoi(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d []byte
	for n > 0 {
		d = append([]byte{byte('0' + n%10)}, d...)
		n /= 10
	}
	return string(d)
}
