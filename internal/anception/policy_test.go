package anception

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"anception/internal/abi"
	"anception/internal/android"
	"anception/internal/netstack"
)

// bootPolicyDevice boots a quiet Anception device with the given knobs.
func bootPolicyDevice(t *testing.T, opts Options) *Device {
	t.Helper()
	opts.Mode = ModeAnception
	opts.DisableTrace = true
	d, err := NewDevice(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// TestEpochDrainOrder pins the epoch/drain protocol's participant order —
// grants before ring before fusion before sockets before binder before
// cache, the one ordering the five deleted per-path supervisor hooks
// used to encode (grant revocation must precede the ring re-arm that
// could recycle its slots; fusion's speculative results ride ring slots
// so they drop right after the re-arm; the cache invalidation runs last
// so flush attempts during earlier drains cannot repopulate it). The
// supervisor's TestPostRestartEpochAdvance asserts the single
// AdvanceEpoch call; this test owns the order within it.
func TestEpochDrainOrder(t *testing.T) {
	d := bootPolicyDevice(t, Options{
		RedirCache: true, RingDepth: 8, GrantThreshold: abi.PageSize,
		BinderSessions: true, BinderReplyCache: true,
	})
	want := []string{"grants", "ring", "fusion", "sockets", "binder", "cache"}
	st := d.Layer.Stats()
	if len(st.Epoch.Order) != len(want) {
		t.Fatalf("epoch order = %v, want %v", st.Epoch.Order, want)
	}
	for i, name := range want {
		if st.Epoch.Order[i] != name {
			t.Fatalf("epoch order[%d] = %q, want %q (full order %v)", i, st.Epoch.Order[i], name, st.Epoch.Order)
		}
	}
	if st.Epoch.Advances != 0 {
		t.Fatalf("fresh device has %d epoch advances, want 0", st.Epoch.Advances)
	}

	// Warm the cache so the advance has something observable to drain.
	p := installAndLaunch(t, d, "com.policy.epoch")
	fd := mustOpen(t, p, "epoch.dat", abi.ORdWr|abi.OCreat)
	data := []byte("drained by the epoch")
	mustPwrite(t, p, fd, data, 0)
	if got := mustPread(t, p, fd, len(data), 0); !bytes.Equal(got, data) {
		t.Fatalf("warm read = %q", got)
	}
	before := d.Layer.Stats()

	d.AdvanceEpoch()

	after := d.Layer.Stats()
	if after.Epoch.Advances != before.Epoch.Advances+1 {
		t.Fatalf("advances %d -> %d, want one step", before.Epoch.Advances, after.Epoch.Advances)
	}
	if after.Epoch.Generation != d.CVM.Generation() {
		t.Fatalf("epoch generation = %d, want boot generation %d", after.Epoch.Generation, d.CVM.Generation())
	}
	if after.Cache.Invalidations == before.Cache.Invalidations {
		t.Fatal("epoch advance did not invalidate the redirection cache")
	}
	if after.Ring.Rearms == before.Ring.Rearms {
		t.Fatal("epoch advance did not re-arm the ring")
	}
	if after.Net.Drains == before.Net.Drains {
		t.Fatal("epoch advance did not drain the socket path")
	}
}

// TestForceSyncUncachedMatchesPlainDevice is the Table I regression for
// the adaptive plane: with AutoTune on but a ForceSyncUncached override
// installed, every microbenchmark row must charge byte-identically to a
// plain uncached device — same read 305.03 us, same write 384.45 us,
// same 31.0/31.3 ms binder rows — because the override routes onto the
// same synchronous channel with every fast path gated off.
func TestForceSyncUncachedMatchesPlainDevice(t *testing.T) {
	plain := bootPolicyDevice(t, Options{})
	auto := bootPolicyDevice(t, Options{AutoTune: true})
	auto.Layer.SetPolicyOverride(&PolicyOverride{ForceSyncUncached: true})

	type bench struct {
		name string
		run  func(d *Device, p *Proc, fd, bfd int) time.Duration
	}
	page := make([]byte, abi.PageSize)
	benches := []bench{
		{"getpid", func(d *Device, p *Proc, _, _ int) time.Duration {
			return measureOnce(d, func() { p.Getpid() })
		}},
		{"write4k", func(d *Device, p *Proc, fd, _ int) time.Duration {
			return measureOnce(d, func() { _, _ = p.Pwrite(fd, page, 0) })
		}},
		{"read4k", func(d *Device, p *Proc, fd, _ int) time.Duration {
			return measureOnce(d, func() { _, _ = p.Pread(fd, abi.PageSize, 0) })
		}},
		{"binder128", func(d *Device, p *Proc, _, bfd int) time.Duration {
			return measureOnce(d, func() {
				_, _ = p.BinderCall(bfd, "location", android.CodeGetLocation, make([]byte, 128))
			})
		}},
		{"binder256", func(d *Device, p *Proc, _, bfd int) time.Duration {
			return measureOnce(d, func() {
				_, _ = p.BinderCall(bfd, "location", android.CodeGetLocation, make([]byte, 256))
			})
		}},
	}

	prep := func(d *Device) (*Proc, int, int) {
		p := installAndLaunch(t, d, "com.policy.tablei")
		fd := mustOpen(t, p, "t1.dat", abi.ORdWr|abi.OCreat)
		mustPwrite(t, p, fd, page, 0)
		bfd, err := p.OpenBinder()
		if err != nil {
			t.Fatal(err)
		}
		return p, fd, bfd
	}
	pp, pfd, pbfd := prep(plain)
	ap, afd, abfd := prep(auto)

	for _, b := range benches {
		got := b.run(auto, ap, afd, abfd)
		want := b.run(plain, pp, pfd, pbfd)
		if got != want {
			t.Errorf("%s: override device charged %v, plain device %v — must be byte-identical", b.name, got, want)
		}
	}

	// The absolute values stay pinned to the paper's Table I.
	within(t, "read4k", measureOnce(auto, func() { _, _ = ap.Pread(afd, abi.PageSize, 0) }),
		305030*time.Nanosecond, 0.03)
	within(t, "binder 128B", measureOnce(auto, func() {
		_, _ = ap.BinderCall(abfd, "location", android.CodeGetLocation, make([]byte, 128))
	}), 31*time.Millisecond, 0.01)
	within(t, "binder 256B", measureOnce(auto, func() {
		_, _ = ap.BinderCall(abfd, "location", android.CodeGetLocation, make([]byte, 256))
	}), 31300*time.Microsecond, 0.01)

	// And no fast path leaked through the override.
	st := auto.Layer.Stats()
	if st.Ring.Submitted != 0 || st.Grants.Calls != 0 || st.Cache.Hits+st.Cache.Misses != 0 || st.Binder.Submitted != 0 {
		t.Fatalf("fast-path traffic under ForceSyncUncached: ring=%d grants=%d cacheLookups=%d binder=%d",
			st.Ring.Submitted, st.Grants.Calls, st.Cache.Hits+st.Cache.Misses, st.Binder.Submitted)
	}
}

// TestDegradedMatrix is the one table-driven breaker test: every fast
// path — redirection cache, async ring, grants, binder sessions, binder
// reply cache, socket ring — must stop serving while the circuit breaker
// is open, and resume once it closes. It replaces scattered per-path
// assertions with a single matrix.
func TestDegradedMatrix(t *testing.T) {
	page := make([]byte, abi.PageSize)
	big := make([]byte, 4*abi.PageSize)

	rows := []struct {
		name string
		opts Options
		// prepare warms the fast path and returns the redirected op to
		// probe plus the fast-path counter the breaker must freeze.
		prepare func(t *testing.T, d *Device, p *Proc) (op func() error, fastPath func(LayerStats) int64)
		// servesDegraded marks the binder reply cache: its uncached sync
		// bridge predates the breaker and still answers — but the cache
		// itself must neither serve nor store.
		servesDegraded bool
	}{
		{
			name: "cache",
			opts: Options{RedirCache: true},
			prepare: func(t *testing.T, d *Device, p *Proc) (func() error, func(LayerStats) int64) {
				fd := mustOpen(t, p, "m.dat", abi.ORdWr|abi.OCreat)
				mustPwrite(t, p, fd, page, 0)
				mustPread(t, p, fd, abi.PageSize, 0)
				return func() error { _, err := p.Pread(fd, abi.PageSize, 0); return err },
					func(s LayerStats) int64 { return int64(s.Cache.Hits + s.Cache.Misses) }
			},
		},
		{
			name: "ring",
			opts: Options{RingDepth: 8},
			prepare: func(t *testing.T, d *Device, p *Proc) (func() error, func(LayerStats) int64) {
				fd := mustOpen(t, p, "m.dat", abi.ORdWr|abi.OCreat)
				return func() error { _, err := p.Pwrite(fd, page, 0); return err },
					func(s LayerStats) int64 { return int64(s.Ring.Submitted) }
			},
		},
		{
			name: "grant",
			opts: Options{GrantThreshold: abi.PageSize},
			prepare: func(t *testing.T, d *Device, p *Proc) (func() error, func(LayerStats) int64) {
				fd := mustOpen(t, p, "m.dat", abi.ORdWr|abi.OCreat)
				mustPwrite(t, p, fd, big, 0)
				return func() error { _, err := p.Pwrite(fd, big, 0); return err },
					func(s LayerStats) int64 { return int64(s.Grants.Calls) }
			},
		},
		{
			name: "binder-session",
			opts: Options{BinderSessions: true},
			prepare: func(t *testing.T, d *Device, p *Proc) (func() error, func(LayerStats) int64) {
				bfd, err := p.OpenBinder()
				if err != nil {
					t.Fatal(err)
				}
				if _, err := p.BinderCall(bfd, "location", android.CodeGetLocation, nil); err != nil {
					t.Fatal(err)
				}
				return func() error {
						_, err := p.BinderCall(bfd, "location", android.CodeGetLocation, nil)
						return err
					},
					func(s LayerStats) int64 { return int64(s.Binder.Submitted) }
			},
		},
		{
			name: "binder-reply-cache",
			opts: Options{BinderReplyCache: true},
			prepare: func(t *testing.T, d *Device, p *Proc) (func() error, func(LayerStats) int64) {
				bfd, err := p.OpenBinder()
				if err != nil {
					t.Fatal(err)
				}
				if _, err := p.BinderCall(bfd, "location", android.CodeGetLocation, nil); err != nil {
					t.Fatal(err)
				}
				return func() error {
						_, err := p.BinderCall(bfd, "location", android.CodeGetLocation, nil)
						return err
					},
					func(s LayerStats) int64 { return int64(s.Binder.ReplyHits + s.Binder.ReplyStores) }
			},
			servesDegraded: true,
		},
		{
			name: "socket-ring",
			opts: Options{RingDepth: 8},
			prepare: func(t *testing.T, d *Device, p *Proc) (func() error, func(LayerStats) int64) {
				d.RegisterRemote("echo:1", func(req []byte) []byte { return req })
				sock, err := p.Socket(netstack.AFInet, netstack.SockStream, 0)
				if err != nil {
					t.Fatal(err)
				}
				if err := p.Connect(sock, "echo:1"); err != nil {
					t.Fatal(err)
				}
				if _, err := p.Send(sock, []byte("warm frame")); err != nil {
					t.Fatal(err)
				}
				return func() error { _, err := p.Send(sock, []byte("probe frame")); return err },
					func(s LayerStats) int64 { return s.Net.RingOps }
			},
		},
	}

	for _, row := range rows {
		t.Run(row.name, func(t *testing.T) {
			d := bootPolicyDevice(t, row.opts)
			p := installAndLaunch(t, d, fmt.Sprintf("com.degraded.%s", row.name))
			op, fastPath := row.prepare(t, d, p)

			before := d.Layer.Stats()
			if fastPath(before) == 0 {
				t.Fatalf("warm-up did not exercise the %s fast path", row.name)
			}

			d.SetDegraded(true)
			err := op()
			if row.servesDegraded {
				if err != nil {
					t.Fatalf("degraded %s op: %v, want the pre-breaker sync bridge to serve", row.name, err)
				}
			} else if !errors.Is(err, abi.EAGAIN) {
				t.Fatalf("degraded %s op err = %v, want EAGAIN", row.name, err)
			}
			if got, was := fastPath(d.Layer.Stats()), fastPath(before); got != was {
				t.Fatalf("breaker open but %s fast path advanced: %d -> %d", row.name, was, got)
			}

			d.SetDegraded(false)
			if err := op(); err != nil {
				t.Fatalf("post-recovery %s op: %v", row.name, err)
			}
			if got, was := fastPath(d.Layer.Stats()), fastPath(before); got <= was {
				t.Fatalf("%s fast path did not resume after recovery: %d -> %d", row.name, was, got)
			}
		})
	}
}

// TestPolicyKnobsForceOverridesUnderAutoTune pins the knob contract from
// the README: a knob set alongside AutoTune is a forced override, not a
// hint. RingDepth pins the transport to the ring, RedirCache pins the
// cache to always serve, GrantThreshold keeps its exact cutover.
func TestPolicyKnobsForceOverridesUnderAutoTune(t *testing.T) {
	forced := newDispatchPolicy(true, true, true)
	for i := int64(0); i < 200; i++ {
		if !forced.useRing(classMeta, 1) {
			t.Fatal("RingForced policy routed off the ring")
		}
		if !forced.serveCache(0, i) {
			t.Fatal("CacheForced policy skipped the cache")
		}
	}
	if s := forced.snapshot(); s.SyncChosen != 0 || s.CacheSkipped != 0 {
		t.Fatalf("forced policy recorded losing arms: %+v", s)
	}

	// An explicit GrantThreshold keeps exact knob semantics: no model
	// exploration ever flips a decision across the cutover.
	knob := abi.PageSize
	model := newDispatchPolicy(true, false, false)
	for i := 0; i < 200; i++ {
		if model.useGrant(knob-1, knob) {
			t.Fatal("payload below the knob took the grant path")
		}
		if !model.useGrant(knob, knob) {
			t.Fatal("payload at the knob took the copy path")
		}
	}

	// Without the knob the learned crossover decides (seeded at 16 KiB).
	if model.useGrant(4<<10, 0) {
		t.Fatal("4 KiB payload granted below the seeded crossover")
	}
	if !model.useGrant(64<<10, 0) {
		t.Fatal("64 KiB payload copied above the seeded crossover")
	}
}

// TestCostModelPreferRing pins the transport decision: inflight traffic
// rides the ring outright; the sequential seed is the ring (the measured
// concurrency sweep has it at or above sync at every thread count); the
// EWMA compare takes over once both arms are sampled; and scheduled
// exploration keeps the losing arm's estimate fresh.
func TestCostModelPreferRing(t *testing.T) {
	m := newCostModel()
	if ring, _ := m.preferRing(classMeta, 3); !ring {
		t.Fatal("inflight calls must ride the ring")
	}
	if ring, _ := m.preferRing(classMeta, 0); !ring {
		t.Fatal("sequential seed must be the ring")
	}

	// Converge the EWMAs: sync measures cheaper for this class.
	for i := 0; i < ewmaMinSamples; i++ {
		m.observe(classMeta, armSync, 0, 100*time.Microsecond)
		m.observe(classMeta, armRing, 0, 300*time.Microsecond)
	}
	var rings, explorations int
	for i := 0; i < explorePeriod; i++ {
		ring, explored := m.preferRing(classMeta, 0)
		if ring {
			rings++
		}
		if explored {
			explorations++
			if !ring {
				t.Fatal("exploration must take the losing arm (the ring here)")
			}
		}
	}
	if explorations != 1 {
		t.Fatalf("explorations = %d over one period, want exactly 1", explorations)
	}
	if rings != explorations {
		t.Fatalf("converged sync-cheaper model chose the ring %d times beyond exploration", rings-explorations)
	}

	// Classes are independent: bulk still rides the seeded ring.
	if ring, _ := m.preferRing(classBulk, 0); !ring {
		t.Fatal("bulk class must keep its own seed")
	}
}

// TestCostModelRetune pins crossover retuning: when grants measure
// cheaper than copies down to a smaller bucket, the crossover moves to
// that bucket's floor, clamped to the sane range.
func TestCostModelRetune(t *testing.T) {
	m := newCostModel()
	if m.crossoverBytes() != autoGrantCrossover {
		t.Fatalf("seed crossover = %d, want %d", m.crossoverBytes(), autoGrantCrossover)
	}
	size := 32 << 10
	for i := 0; i < ewmaMinSamples; i++ {
		m.observe(classBulk, armSync, size, 400*time.Microsecond) // copy arm
		m.observe(classBulk, armGrant, size, 100*time.Microsecond)
	}
	m.mu.Lock()
	m.retuneLocked()
	m.mu.Unlock()
	if got := m.crossoverBytes(); got != size {
		t.Fatalf("crossover = %d after grants win the 32 KiB bucket, want %d", got, size)
	}
	hist := m.sizeHistogram()
	if hist[sizeBucket(size)] != 2*ewmaMinSamples {
		t.Fatalf("size histogram bucket = %d, want %d", hist[sizeBucket(size)], 2*ewmaMinSamples)
	}
}

// TestCostModelCacheWorthIt pins the cache gate: optimistic during
// burn-in, bypassing once the hit rate collapses, with a scheduled
// re-probe so a newly cacheable workload is noticed.
func TestCostModelCacheWorthIt(t *testing.T) {
	m := newCostModel()
	if !m.cacheWorthIt(0, cacheProbeMinLookups-1) {
		t.Fatal("burn-in lookups must serve optimistically")
	}
	if !m.cacheWorthIt(cacheProbeMinLookups, cacheProbeMinLookups) {
		t.Fatal("a perfect hit rate must serve")
	}
	probes := 0
	for i := 0; i < explorePeriod; i++ {
		if m.cacheWorthIt(0, cacheProbeMinLookups) {
			probes++
		}
	}
	if probes != 1 {
		t.Fatalf("collapsed hit rate re-probed %d times per period, want exactly 1", probes)
	}
}

// BenchmarkPolicyUseRing measures the adaptive transport decision plus
// its observation on the lock-free hot path.
func BenchmarkPolicyUseRing(b *testing.B) {
	p := newDispatchPolicy(true, false, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.useRing(classBulk, 1)
		p.model.observe(classBulk, armRing, abi.PageSize, 100*time.Microsecond)
	}
}

// BenchmarkPolicyUseGrant measures the payload-strategy decision against
// the learned crossover.
func BenchmarkPolicyUseGrant(b *testing.B) {
	p := newDispatchPolicy(true, false, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.useGrant(64<<10, 0)
	}
}
