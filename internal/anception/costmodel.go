package anception

import (
	"math/bits"
	"sync"
	"time"

	"anception/internal/abi"
	"anception/internal/kernel"
)

// This file is the online cost model behind the adaptive data plane
// (DESIGN.md §15). It learns, per call class and payload size, which arm
// of each dispatch decision — sync vs ring transport, copy vs grant
// payload strategy, cache vs passthrough — is currently cheaper, from
// the same sim-clock latencies the benchmarks measure. All state is
// host-side Go bookkeeping: updating it costs zero sim time, and every
// decision is a pure function of counters so runs stay deterministic
// (no wall clock, no randomness — exploration is counter-scheduled).

// opClass buckets redirected calls for per-class latency EWMAs. Classes
// are deliberately coarse: the model needs enough samples per class to
// converge within a workload's first few hundred calls.
type opClass int

const (
	// classMeta is small fixed-cost traffic: path calls, attr calls,
	// fd plumbing — anything that isn't bulk data movement.
	classMeta opClass = iota
	// classBulk is the read/write family (incl. vectored forms), where
	// payload size dominates and the copy-vs-grant decision lives.
	classBulk
	// classSock is the socket family, which rides sockop frames and has
	// its own fixed costs.
	classSock
	numOpClasses
)

// Dispatch arms observed by the model. armSync and armRing compete for
// the transport decision; armGrant competes with the bulk copy cost for
// the payload decision.
const (
	armSync = iota
	armRing
	armGrant
	numArms
)

const (
	// Payload-size histogram buckets are log2-spaced: bucket b covers
	// [64<<b, 64<<(b+1)) bytes, so 16 buckets span 64 B up to 2 MiB —
	// comfortably past every benchmarked transfer size.
	minSizeBucketBytes = 64
	numSizeBuckets     = 16

	// autoGrantCrossover seeds the copy-vs-grant cutover with the
	// measured crossover from BENCH_redirection.json (-exp zerocopy):
	// copy wins through 4K, grants win from 16K. Retuning clamps to
	// [minGrantCrossover, maxGrantCrossover] so a noisy run can never
	// push the cutover somewhere absurd.
	autoGrantCrossover = 16 << 10
	minGrantCrossover  = 8 << 10
	maxGrantCrossover  = 1 << 20

	// ewmaAlphaShift sets the EWMA smoothing factor to 1/8: new
	// observations move the estimate an eighth of the way, so ~16
	// samples converge it while one outlier barely dents it.
	ewmaAlphaShift = 3
	// ewmaMinSamples is how many observations an arm needs before the
	// model trusts its EWMA over the seeded default.
	ewmaMinSamples = 8
	// explorePeriod schedules deterministic exploration: every Nth
	// decision in a class takes the currently-losing arm so its EWMA
	// keeps tracking reality. 1/64 keeps the overhead in the noise.
	explorePeriod = 64
	// retunePeriod is how many bulk observations accumulate between
	// copy-vs-grant crossover retunes.
	retunePeriod = 256

	// cacheProbeMinLookups is the burn-in before the cache-vs-
	// passthrough decision activates: below it the cache always serves,
	// because a hit rate over a handful of lookups is noise.
	cacheProbeMinLookups = 512
	// cacheMinHitRate is the floor under which caching is judged not
	// worth its lookup overhead and the policy passes through, re-
	// probing every explorePeriod-th call so a workload shift that
	// makes the cache useful again is noticed.
	cacheMinHitRate = 0.05
)

// ewma is one exponentially-weighted latency estimate in sim
// nanoseconds.
type ewma struct {
	val float64
	n   int64
}

func (e *ewma) observe(v float64) {
	if e.n == 0 {
		e.val = v
	} else {
		e.val += (v - e.val) / (1 << ewmaAlphaShift)
	}
	e.n++
}

// costModel is the mutable model state. One instance per Layer, built
// only when Options.AutoTune is set; a nil model means every decision
// falls back to the static knob semantics.
type costModel struct {
	mu sync.Mutex

	// transport[class][armSync|armRing] tracks per-class round-trip
	// latency on each transport.
	transport [numOpClasses][2]ewma
	// transportCalls schedules per-class exploration.
	transportCalls [numOpClasses]int64

	// copyCost/grantCost track bulk-call latency per size bucket for
	// each payload strategy; sizeHist is the observed payload-size
	// histogram (surfaced via LayerStats for operators and tests).
	copyCost  [numSizeBuckets]ewma
	grantCost [numSizeBuckets]ewma
	sizeHist  [numSizeBuckets]int64

	// crossover is the current copy-vs-grant cutover in bytes; bulk
	// payloads at or above it take the grant path.
	crossover int
	// bulkDecisions schedules boundary exploration; bulkObs schedules
	// crossover retunes.
	bulkDecisions int64
	bulkObs       int64

	// cacheProbes schedules the passthrough re-probe when the hit rate
	// has collapsed.
	cacheProbes int64

	// chainPerLink tracks the per-link latency of fused chain
	// submissions; the fusion decision compares it against the
	// meta-class ring EWMA (the cost of one independent round trip).
	chainPerLink ewma
}

func newCostModel() *costModel {
	return &costModel{crossover: autoGrantCrossover}
}

// opClassOf classifies a redirected call for the model. Socket calls
// are matched first: Send/Recv are bulk-shaped but ride sockop frames
// with their own fixed costs.
func opClassOf(args *kernel.Args) opClass {
	if isSockCall(args.Nr) {
		return classSock
	}
	switch args.Nr {
	case abi.SysRead, abi.SysWrite, abi.SysPread64, abi.SysPwrite64,
		abi.SysReadv, abi.SysWritev, abi.SysPreadv, abi.SysPwritev:
		return classBulk
	default:
		return classMeta
	}
}

// payloadLen is the byte count a call moves (0 for non-bulk calls).
func payloadLen(args *kernel.Args) int {
	if len(args.Iov) > 0 {
		return grantIovTotal(args.Iov)
	}
	if len(args.Buf) > 0 {
		return len(args.Buf)
	}
	return args.Size
}

// sizeBucket maps a payload length to its log2 histogram bucket.
func sizeBucket(n int) int {
	if n < minSizeBucketBytes {
		return 0
	}
	b := bits.Len(uint(n)) - bits.Len(uint(minSizeBucketBytes))
	if b >= numSizeBuckets {
		return numSizeBuckets - 1
	}
	return b
}

// bucketFloorBytes is the smallest payload length in a bucket.
func bucketFloorBytes(b int) int {
	return minSizeBucketBytes << b
}

// observe records one completed call's sim latency under the arm that
// served it. Bulk observations also feed the per-size copy/grant EWMAs
// and, periodically, retune the crossover.
func (m *costModel) observe(class opClass, arm int, size int, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v := float64(elapsed)
	switch arm {
	case armGrant:
		m.grantCost[sizeBucket(size)].observe(v)
	default:
		m.transport[class][arm].observe(v)
		if class == classBulk {
			m.copyCost[sizeBucket(size)].observe(v)
		}
	}
	if class == classBulk || arm == armGrant {
		m.sizeHist[sizeBucket(size)]++
		m.bulkObs++
		if m.bulkObs%retunePeriod == 0 {
			m.retuneLocked()
		}
	}
}

// preferRing decides the transport arm for one call. With other guest
// calls in flight the ring wins outright: its coalesced doorbells
// amortize across the batch (the measured 2.68× at 16 threads). The
// sequential seed is also the ring — the concurrency sweep in
// BENCH_redirection.json measures the ring at or above the sync
// channel at every thread count, one included — and the seed only
// yields once both per-class EWMAs have enough samples to compare.
// Scheduled exploration takes the other arm every Nth call, which both
// feeds the sync EWMA toward convergence and keeps the losing arm's
// estimate tracking reality after a workload shift.
func (m *costModel) preferRing(class opClass, inflight int64) (ring, explored bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.transportCalls[class]++
	if inflight > 0 {
		return true, false
	}
	s, r := &m.transport[class][armSync], &m.transport[class][armRing]
	want := true
	if s.n >= ewmaMinSamples && r.n >= ewmaMinSamples {
		want = r.val < s.val
	}
	if m.transportCalls[class]%explorePeriod == 0 {
		return !want, true
	}
	return want, false
}

// shouldGrant decides the payload arm for one bulk call by comparing
// its size against the learned crossover. Calls in the buckets adjacent
// to the crossover explore the losing arm on schedule so both EWMAs at
// the boundary keep tracking reality.
func (m *costModel) shouldGrant(size int) (grant, explored bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.bulkDecisions++
	want := size >= m.crossover
	b, cb := sizeBucket(size), sizeBucket(m.crossover)
	if (b == cb || b+1 == cb || b == cb+1) && m.bulkDecisions%explorePeriod == 0 {
		return !want, true
	}
	return want, false
}

// retuneLocked moves the crossover to the smallest size bucket where
// the grant EWMA beats the copy EWMA (both arms sufficiently sampled),
// clamped to the sane range. If grants never win, the crossover stays.
func (m *costModel) retuneLocked() {
	for b := 0; b < numSizeBuckets; b++ {
		c, g := &m.copyCost[b], &m.grantCost[b]
		if c.n < ewmaMinSamples || g.n < ewmaMinSamples {
			continue
		}
		if g.val < c.val {
			cross := bucketFloorBytes(b)
			if cross < minGrantCrossover {
				cross = minGrantCrossover
			}
			if cross > maxGrantCrossover {
				cross = maxGrantCrossover
			}
			m.crossover = cross
			return
		}
	}
}

// observeChain records one fused chain's sim latency, amortized per
// link.
func (m *costModel) observeChain(links int, elapsed time.Duration) {
	if links <= 0 {
		return
	}
	m.mu.Lock()
	m.chainPerLink.observe(float64(elapsed) / float64(links))
	m.mu.Unlock()
}

// chainWorthIt decides whether fusing an N-link chain is expected to
// beat N independent ring round trips: the learned per-link chain cost
// against the meta-class ring EWMA. Before either estimate converges
// the model is optimistic — fusion's fixed costs are strictly lower,
// so the burn-in fuses and the EWMAs learn from real chains.
func (m *costModel) chainWorthIt(int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, r := &m.chainPerLink, &m.transport[classMeta][armRing]
	if c.n < ewmaMinSamples || r.n < ewmaMinSamples {
		return true
	}
	return c.val < r.val
}

// cacheWorthIt decides cache-vs-passthrough from the observed hit rate.
// During burn-in the cache always serves; after that, a collapsed hit
// rate routes around the cache, with a scheduled re-probe so the model
// notices when the workload becomes cacheable again.
func (m *costModel) cacheWorthIt(hits, lookups int64) bool {
	if lookups < cacheProbeMinLookups {
		return true
	}
	if float64(hits) >= cacheMinHitRate*float64(lookups) {
		return true
	}
	m.mu.Lock()
	m.cacheProbes++
	probe := m.cacheProbes%explorePeriod == 0
	m.mu.Unlock()
	return probe
}

// crossoverBytes snapshots the current copy-vs-grant cutover.
func (m *costModel) crossoverBytes() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crossover
}

// sizeHistogram snapshots the observed bulk payload-size histogram.
func (m *costModel) sizeHistogram() [numSizeBuckets]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sizeHist
}

// classCosts snapshots the per-class expected service cost in sim
// nanoseconds: the better transport arm's EWMA, or whichever arm has
// samples. Zero means the class has not been observed. The fleet's
// placement scheduler consumes these as load signals — a shard whose
// calls are getting slower scores as more loaded than one with the same
// inflight count but faster per-op estimates.
func (m *costModel) classCosts() [numOpClasses]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out [numOpClasses]float64
	for c := opClass(0); c < numOpClasses; c++ {
		s, r := m.transport[c][armSync], m.transport[c][armRing]
		switch {
		case s.n > 0 && r.n > 0:
			out[c] = s.val
			if r.val < s.val {
				out[c] = r.val
			}
		case s.n > 0:
			out[c] = s.val
		case r.n > 0:
			out[c] = r.val
		}
	}
	return out
}
