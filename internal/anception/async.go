package anception

import (
	"errors"
	"fmt"
	"time"

	"anception/internal/abi"
	"anception/internal/kernel"
	"anception/internal/marshal"
	"anception/internal/sim"
)

// forwardRing is forwardOn over an asynchronous ring transport: the call
// is submitted into an SQ slot (overlapping freely with submissions from
// other goroutines), the submitter blocks only on its own slot's
// completion, and deadline/degraded/host-down semantics match the
// synchronous path slot-for-slot. Ordering: calls on the same guest
// descriptor share a ring key, so the pool executes them FIFO.
func (l *Layer) forwardRing(st *layerState, ring marshal.AsyncTransport, t *kernel.Task, args *kernel.Args) kernel.Result {
	if !l.enterGuestCall(st) {
		l.counters.failedFast.Add(1)
		return kernel.Result{Ret: -1, Err: fmt.Errorf("container circuit breaker open: %w", abi.EAGAIN)}
	}
	defer l.exitGuestCall()
	p, err := st.proxies.Ensure(t)
	if err != nil {
		if errors.Is(err, abi.EHOSTDOWN) {
			l.counters.hostDown.Add(1)
		}
		return kernel.Result{Ret: -1, Err: fmt.Errorf("enroll proxy: %w", err)}
	}
	l.counters.redirected.Add(1)
	if l.trace != nil {
		l.trace.Record(sim.EvRedirect, "redirect %s pid=%d -> proxy %d (ring)", args.Nr, t.PID, p.PID)
	}

	enc := *args
	if isReadLike(args.Nr) && enc.Buf != nil {
		enc.Size = len(enc.Buf)
		enc.Buf = nil
	}
	payload := marshal.EncodeArgs(&enc)
	l.clock.Advance(time.Duration(len(payload)) * l.model.MarshalPerByte)

	start := l.clock.Now()
	pending, serr := ring.Submit(payload, ringKey(t, args), func(req []byte) []byte {
		decoded, derr := marshal.DecodeArgs(req)
		if derr != nil {
			return marshal.EncodeResult(kernel.Result{Ret: -1, Err: abi.EINVAL})
		}
		if isReadLike(decoded.Nr) && decoded.Buf == nil && decoded.Size > 0 {
			decoded.Buf = make([]byte, decoded.Size)
		}
		resp := marshal.EncodeResult(st.proxies.ExecuteDrained(p, *decoded))
		if st.tamper != nil {
			resp = st.tamper(resp)
		}
		return resp
	})
	if serr != nil {
		return l.transportFailure(t, args, start, serr)
	}
	respBytes, werr := pending.Wait()
	if werr != nil {
		return l.transportFailure(t, args, start, werr)
	}
	if l.clock.Now()-start > l.deadline {
		l.counters.timedOut.Add(1)
		if l.trace != nil {
			l.trace.Record(sim.EvTimeout, "%s pid=%d completed past %v deadline", args.Nr, t.PID, l.deadline)
		}
		return kernel.Result{Ret: -1, Err: fmt.Errorf("call exceeded %v deadline: %w", l.deadline, abi.ETIMEDOUT)}
	}
	res, derr := marshal.DecodeResult(respBytes)
	if derr != nil {
		return kernel.Result{Ret: -1, Err: derr}
	}
	return res
}

// forwardBatchRing moves a coalesced batch through one ring slot: the
// whole batch shares a key (its descriptor), so it stays ordered against
// the descriptor's single-call traffic.
func (l *Layer) forwardBatchRing(st *layerState, ring marshal.AsyncTransport, t *kernel.Task, calls []*kernel.Args) ([]kernel.Result, error) {
	if !l.enterGuestCall(st) {
		l.counters.failedFast.Add(1)
		return nil, fmt.Errorf("container circuit breaker open: %w", abi.EAGAIN)
	}
	defer l.exitGuestCall()
	p, err := st.proxies.Ensure(t)
	if err != nil {
		if errors.Is(err, abi.EHOSTDOWN) {
			l.counters.hostDown.Add(1)
		}
		return nil, fmt.Errorf("enroll proxy: %w", err)
	}
	l.counters.redirected.Add(int64(len(calls)))
	if l.trace != nil {
		l.trace.Record(sim.EvRedirect, "redirect batch of %d calls pid=%d -> proxy %d (ring)", len(calls), t.PID, p.PID)
	}
	payload := marshal.EncodeArgsBatch(calls)
	l.clock.Advance(time.Duration(len(payload)) * l.model.MarshalPerByte)

	start := l.clock.Now()
	pending, serr := ring.Submit(payload, ringKey(t, calls[0]), func(req []byte) []byte {
		decoded, derr := marshal.DecodeArgsBatch(req)
		if derr != nil {
			return marshal.EncodeResultBatch([]kernel.Result{{Ret: -1, Err: abi.EINVAL}})
		}
		for _, d := range decoded {
			if isReadLike(d.Nr) && d.Buf == nil && d.Size > 0 {
				d.Buf = make([]byte, d.Size)
			}
		}
		// Per-call errors travel home positionally inside the encoded
		// result vector; the aggregate error is for direct Manager users.
		batch, _ := st.proxies.ExecuteBatchDrained(p, decoded)
		resp := marshal.EncodeResultBatch(batch)
		if st.tamper != nil {
			resp = st.tamper(resp)
		}
		return resp
	})
	if serr != nil {
		fail := l.transportFailure(t, calls[0], start, serr)
		return nil, fail.Err
	}
	respBytes, werr := pending.Wait()
	if werr != nil {
		fail := l.transportFailure(t, calls[0], start, werr)
		return nil, fail.Err
	}
	if l.clock.Now()-start > l.deadline {
		l.counters.timedOut.Add(1)
		return nil, fmt.Errorf("batch exceeded %v deadline: %w", l.deadline, abi.ETIMEDOUT)
	}
	results, derr := marshal.DecodeResultBatch(respBytes)
	if derr != nil {
		return nil, derr
	}
	if len(results) != len(calls) {
		return nil, fmt.Errorf("batch reply has %d results for %d calls: %w", len(results), len(calls), abi.EIO)
	}
	return results, nil
}

// ringKey picks the FIFO-ordering key: the guest descriptor when the
// call has one (per-FD ordering), else the caller's PID.
func ringKey(t *kernel.Task, args *kernel.Args) int64 {
	if args.FD > 0 {
		return int64(args.FD)
	}
	return int64(t.PID)
}
