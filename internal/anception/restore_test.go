package anception

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"anception/internal/abi"
	"anception/internal/android"
)

// bootSnapshotDevice boots an Anception device with checkpoints enabled
// plus whatever warm-state machinery the options ask for.
func bootSnapshotDevice(t *testing.T, opts Options) *Device {
	t.Helper()
	opts.Mode = ModeAnception
	opts.Vulns = android.AllVulnerabilities()
	if opts.SnapshotInterval == 0 {
		opts.SnapshotInterval = time.Millisecond
	}
	d, err := NewDevice(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// TestRestoreKeepsWarmState: warm state provably unchanged since the
// checkpoint survives a snapshot restore — clean redirection-cache pages
// keep serving host-side, the binder session is re-pinned without paying
// setup again, and checkpointed replies still hit. Dirty write-behind
// buffers drain (crash semantics), exactly as a cold restart would drop
// them.
func TestRestoreKeepsWarmState(t *testing.T) {
	d := bootSnapshotDevice(t, Options{
		RedirCache:       true,
		BinderSessions:   true,
		BinderReplyCache: true,
	})
	p := installAndLaunch(t, d, "com.warm")

	// Warm the page cache: write+close (flushes), reopen, read twice.
	fd, err := p.Open("warm.txt", abi.OWrOnly|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Write(fd, []byte("warm state survives the restore")); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(fd); err != nil {
		t.Fatal(err)
	}
	rd, err := p.Open("warm.txt", abi.ORdOnly, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Pread(rd, 8, 0); err != nil {
		t.Fatal(err)
	}

	// Warm the binder fast path: one session call (opens the session,
	// stores a cacheable reply).
	bfd, err := p.OpenBinder()
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("where am i")
	if _, err := p.BinderCall(bfd, "location", android.CodeGetLocation, payload); err != nil {
		t.Fatal(err)
	}

	if !d.Checkpoint() {
		t.Fatal("checkpoint refused with snapshots enabled")
	}

	// Post-checkpoint novel state: a buffered positioned write whose
	// dirty extents must drain on restore, never replay against the
	// restored guest.
	wfd, err := p.Open("dirty.txt", abi.OWrOnly|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Pwrite(wfd, []byte("buffered after the checkpoint"), 0); err != nil {
		t.Fatal(err)
	}

	if err := d.RestoreFromSnapshot(); err != nil {
		t.Fatal(err)
	}

	rs := d.Layer.Stats().Restore
	if rs.Restores != 1 {
		t.Fatalf("Restore stats = %+v, want exactly 1 restore", rs)
	}
	if rs.CachePagesKept == 0 {
		t.Fatalf("Restore stats = %+v, want clean cache pages kept", rs)
	}
	if rs.SessionsKept != 1 {
		t.Fatalf("Restore stats = %+v, want the pre-checkpoint session re-pinned", rs)
	}
	if rs.RepliesKept == 0 {
		t.Fatalf("Restore stats = %+v, want checkpointed replies kept", rs)
	}
	if rs.DirtyDropped == 0 {
		t.Fatalf("Restore stats = %+v, want post-checkpoint dirty extents dropped", rs)
	}

	// The kept page serves from host memory: the same read hits without a
	// container round-trip (the stale guest descriptor would EBADF).
	hitsBefore := d.Layer.Stats().Cache.Hits
	if _, err := p.Pread(rd, 8, 0); err != nil {
		t.Fatalf("cached read after restore: %v", err)
	}
	if got := d.Layer.Stats().Cache.Hits; got <= hitsBefore {
		t.Fatalf("post-restore read missed the kept page: hits %d -> %d", hitsBefore, got)
	}

	// The kept reply hits; the re-pinned session carries new calls without
	// a second session setup.
	if _, err := p.BinderCall(bfd, "location", android.CodeGetLocation, payload); err != nil {
		t.Fatal(err)
	}
	st := d.BinderStats()
	if st.ReplyHits != 1 {
		t.Fatalf("binder stats = %+v, want the checkpointed reply to hit", st)
	}
	if _, err := p.BinderCall(bfd, "location", android.CodeGetLocation, []byte("elsewhere")); err != nil {
		t.Fatal(err)
	}
	if st := d.BinderStats(); st.SessionsOpened != 1 {
		t.Fatalf("binder stats = %+v, want no second session setup after restore", st)
	}
	binderIdentity(t, d)
}

// TestConcurrentRestoreUnderLoad: apps hammer redirected I/O from several
// goroutines while the container is checkpointed and restored repeatedly.
// Mirrors TestConcurrentRestartUnderLoad: every failure an app observes
// must be a clean errno, the async ring's accounting identity
// (Submitted = Completed + Failed) must hold once the dust settles, and
// every app can still do redirected I/O afterwards. Run under -race in CI.
func TestConcurrentRestoreUnderLoad(t *testing.T) {
	d := bootSnapshotDevice(t, Options{RingDepth: 8, RedirCache: true})
	const workers = 4
	apps := make([]*Proc, workers)
	for i := range apps {
		apps[i] = installAndLaunch(t, d, fmt.Sprintf("com.restore%d", i))
	}

	stop := make(chan struct{})
	badErr := make(chan error, workers)
	var wg sync.WaitGroup
	for i, app := range apps {
		wg.Add(1)
		go func(i int, app *Proc) {
			defer wg.Done()
			report := func(err error) {
				var errno abi.Errno
				if err != nil && !errors.As(err, &errno) {
					select {
					case badErr <- fmt.Errorf("worker %d: non-errno error: %w", i, err):
					default:
					}
				}
			}
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("r%d-%d.txt", i, n)
				fd, err := app.Open(name, abi.OWrOnly|abi.OCreat, 0o600)
				if err != nil {
					report(err)
					continue
				}
				if _, err := app.Write(fd, []byte("under load")); err != nil {
					report(err)
				}
				if _, err := app.Pread(fd, 4, 0); err != nil {
					report(err)
				}
				report(app.Close(fd))
			}
		}(i, app)
	}

	const rounds = 5
	for r := 0; r < rounds; r++ {
		if !d.Checkpoint() {
			t.Fatal("checkpoint refused")
		}
		if err := d.RestoreFromSnapshot(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-badErr:
		t.Fatal(err)
	default:
	}

	// Every worker recovers against the restored guest.
	for i, app := range apps {
		fd, err := app.Open("final.txt", abi.OWrOnly|abi.OCreat, 0o600)
		if err != nil {
			t.Fatalf("worker %d post-restore open: %v", i, err)
		}
		if _, err := app.Write(fd, []byte("clean")); err != nil {
			t.Fatalf("worker %d post-restore write: %v", i, err)
		}
		if err := app.Close(fd); err != nil {
			t.Fatalf("worker %d post-restore close: %v", i, err)
		}
		if d.Proxies.ProxyFor(app.Task.PID) == nil {
			t.Fatalf("worker %d has no proxy on the restored guest", i)
		}
	}
	st := d.Layer.Stats()
	if st.Restore.Restores != rounds {
		t.Fatalf("Restores = %d, want %d", st.Restore.Restores, rounds)
	}
	if st.Ring.Submitted != st.Ring.Completed+st.Ring.Failed {
		t.Fatalf("ring accounting broken after restores: %+v", st.Ring)
	}
}

// TestLiveUpgradeUnderLoad: the guest is swapped under load. In-flight
// calls drain gracefully and gated arrivals fail EAGAIN (retryable) —
// never EHOSTDOWN, the signature of an ungraceful teardown. Accounting
// identities hold afterwards and every worker keeps going against the
// upgraded guest. Run under -race in CI.
func TestLiveUpgradeUnderLoad(t *testing.T) {
	d := bootSnapshotDevice(t, Options{RingDepth: 8, BinderSessions: true})
	const workers = 4
	apps := make([]*Proc, workers)
	bfds := make([]int, workers)
	for i := range apps {
		apps[i] = installAndLaunch(t, d, fmt.Sprintf("com.upgrade%d", i))
		fd, err := apps[i].OpenBinder()
		if err != nil {
			t.Fatal(err)
		}
		bfds[i] = fd
	}

	stop := make(chan struct{})
	badErr := make(chan error, workers)
	var wg sync.WaitGroup
	for i, app := range apps {
		wg.Add(1)
		go func(i int, app *Proc, bfd int) {
			defer wg.Done()
			report := func(err error) {
				if err == nil {
					return
				}
				var errno abi.Errno
				switch {
				case errors.Is(err, abi.EHOSTDOWN):
					select {
					case badErr <- fmt.Errorf("worker %d: EHOSTDOWN during live upgrade: %w", i, err):
					default:
					}
				case !errors.As(err, &errno):
					select {
					case badErr <- fmt.Errorf("worker %d: non-errno error: %w", i, err):
					default:
					}
				}
			}
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("u%d-%d.txt", i, n)
				fd, err := app.Open(name, abi.OWrOnly|abi.OCreat, 0o600)
				if err != nil {
					report(err)
					continue
				}
				if _, err := app.Write(fd, []byte("under upgrade")); err != nil {
					report(err)
				}
				report(app.Close(fd))
				_, err = app.BinderCall(bfd, "location", android.CodeGetLocation, []byte{byte(i), byte(n)})
				report(err)
			}
		}(i, app, bfds[i])
	}

	const rounds = 3
	for r := 0; r < rounds; r++ {
		if err := d.LiveUpgrade(); err != nil {
			t.Fatalf("live upgrade %d: %v", r, err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-badErr:
		t.Fatal(err)
	default:
	}

	for i, app := range apps {
		fd, err := app.Open("final.txt", abi.OWrOnly|abi.OCreat, 0o600)
		if err != nil {
			t.Fatalf("worker %d post-upgrade open: %v", i, err)
		}
		if _, err := app.Write(fd, []byte("clean")); err != nil {
			t.Fatalf("worker %d post-upgrade write: %v", i, err)
		}
		if err := app.Close(fd); err != nil {
			t.Fatalf("worker %d post-upgrade close: %v", i, err)
		}
		if _, err := app.BinderCall(bfds[i], "location", android.CodeGetLocation, []byte("post")); err != nil {
			t.Fatalf("worker %d post-upgrade binder call: %v", i, err)
		}
	}
	st := d.Layer.Stats()
	if st.Restore.Upgrades != rounds {
		t.Fatalf("Upgrades = %d, want %d", st.Restore.Upgrades, rounds)
	}
	if st.Ring.Submitted != st.Ring.Completed+st.Ring.Failed {
		t.Fatalf("ring accounting broken after upgrades: %+v", st.Ring)
	}
	binderIdentity(t, d)
}
