package anception

import (
	"bytes"
	"errors"
	"testing"

	"anception/internal/abi"
	"anception/internal/android"
	"anception/internal/kernel"
)

// bootFusedDevice boots an Anception device with the async ring and the
// syscall-fusion layer enabled (cache on, so the composition rules —
// flush-before-chain, cache-served links — are exercised too).
func bootFusedDevice(t *testing.T) (*Device, *Proc) {
	t.Helper()
	return bootCachedDevice(t, func(o *Options) {
		o.RingDepth = 16
		o.RingWorkers = 2
		o.FusionEnable = true
	})
}

// seedGuestFile creates a file through the app itself so ownership is
// right, then closes it so any buffered bytes land in the guest.
func seedGuestFile(t *testing.T, p *Proc, name string, content []byte) {
	t.Helper()
	fd := mustOpen(t, p, name, abi.ORdWr|abi.OCreat)
	mustPwrite(t, p, fd, content, 0)
	if err := p.Close(fd); err != nil {
		t.Fatal(err)
	}
}

// openStatReadCloseChain builds the canonical 4-link fused shape: the
// fstat, pread, and close all bind the descriptor minted by link 0.
func openStatReadCloseChain(path string, buf []byte) []ChainCall {
	return []ChainCall{
		{Args: kernel.Args{Nr: abi.SysOpen, Path: path, Flags: abi.ORdWr}, FDFrom: -1},
		{Args: kernel.Args{Nr: abi.SysFstat}, FDFrom: 0},
		{Args: kernel.Args{Nr: abi.SysPread64, Buf: buf}, FDFrom: 0},
		{Args: kernel.Args{Nr: abi.SysClose}, FDFrom: 0},
	}
}

// TestChainFusedOpenStatReadClose: the explicit Chain API executes a
// dependent open→fstat→pread→close entirely guest-side in one
// submission, rewrites the minted descriptor to a host fd, writes read
// data back into the caller's buffer, and retires the descriptor after
// the chained close.
func TestChainFusedOpenStatReadClose(t *testing.T) {
	d, p := bootFusedDevice(t)
	content := []byte("fused chains ride one doorbell")
	seedGuestFile(t, p, "fuse.dat", content)

	buf := make([]byte, len(content))
	results := p.Chain(openStatReadCloseChain("fuse.dat", buf)...)
	if len(results) != 4 {
		t.Fatalf("chain returned %d results, want 4", len(results))
	}
	for i, r := range results {
		if !r.Ok() {
			t.Fatalf("link %d failed: %v", i, r.Err)
		}
	}
	if results[0].FD <= 0 {
		t.Fatalf("open link minted fd %d, want a host descriptor", results[0].FD)
	}
	if results[1].Ret != int64(len(content)) {
		t.Fatalf("fstat Ret = %d, want file size %d", results[1].Ret, len(content))
	}
	if results[2].Ret != int64(len(content)) || !bytes.Equal(buf, content) {
		t.Fatalf("pread Ret=%d buf=%q, want %d bytes %q", results[2].Ret, buf, len(content), content)
	}
	if e := p.Task.FD(results[0].FD); e != nil {
		t.Fatalf("descriptor %d still installed after chained close", results[0].FD)
	}

	fs := d.Layer.Stats().Fusion
	if fs.Explicit != 1 || fs.Chains < 1 {
		t.Fatalf("stats: Explicit=%d Chains=%d, want 1 explicit chain fused", fs.Explicit, fs.Chains)
	}
	if fs.Submitted != fs.Completed+fs.Failed {
		t.Fatalf("accounting identity broken: Submitted=%d Completed=%d Failed=%d",
			fs.Submitted, fs.Completed, fs.Failed)
	}
	if fs.Failed != 0 {
		t.Fatalf("Failed=%d on an all-success chain", fs.Failed)
	}
}

// TestChainShortCircuitErrno: a failing mid-chain link returns its own
// errno and the remaining links are not executed.
func TestChainShortCircuitErrno(t *testing.T) {
	d, p := bootFusedDevice(t)
	seedGuestFile(t, p, "short.dat", []byte("x"))

	results := p.Chain(
		ChainCall{Args: kernel.Args{Nr: abi.SysOpen, Path: "no-such-file", Flags: abi.ORdOnly}, FDFrom: -1},
		ChainCall{Args: kernel.Args{Nr: abi.SysFstat}, FDFrom: 0},
		ChainCall{Args: kernel.Args{Nr: abi.SysClose}, FDFrom: 0},
	)
	if results[0].Ok() {
		t.Fatal("open of missing file succeeded")
	}
	if !errors.Is(results[0].Err, abi.ENOENT) {
		t.Fatalf("open err = %v, want ENOENT", results[0].Err)
	}
	for i := 1; i < 3; i++ {
		if results[i].Ok() {
			t.Fatalf("link %d ran despite short-circuit", i)
		}
	}
	fs := d.Layer.Stats().Fusion
	if fs.Submitted != fs.Completed+fs.Failed {
		t.Fatalf("accounting identity broken: Submitted=%d Completed=%d Failed=%d",
			fs.Submitted, fs.Completed, fs.Failed)
	}
}

// TestChainForceSyncFallback: under ForceSyncUncached the chain takes
// the per-call path (Table I pinning) — results are identical and the
// fallback is counted.
func TestChainForceSyncFallback(t *testing.T) {
	d, p := bootFusedDevice(t)
	content := []byte("sync fallback stays byte-identical")
	seedGuestFile(t, p, "sync.dat", content)

	d.Layer.SetPolicyOverride(&PolicyOverride{ForceSyncUncached: true})
	buf := make([]byte, len(content))
	results := p.Chain(openStatReadCloseChain("sync.dat", buf)...)
	for i, r := range results {
		if !r.Ok() {
			t.Fatalf("link %d failed under forced sync: %v", i, r.Err)
		}
	}
	if !bytes.Equal(buf, content) {
		t.Fatalf("pread buf = %q, want %q", buf, content)
	}
	fs := d.Layer.Stats().Fusion
	if fs.Fallbacks != 1 || fs.Chains != 0 {
		t.Fatalf("stats: Fallbacks=%d Chains=%d, want the chain to fall back, not fuse", fs.Fallbacks, fs.Chains)
	}
}

// TestChainMatchesUnfused: the fused chain and the plain per-call
// sequence observe the same results.
func TestChainMatchesUnfused(t *testing.T) {
	content := []byte("two arms, one answer")

	run := func(t *testing.T, fused bool) (int64, int64, []byte) {
		var p *Proc
		if fused {
			_, p = bootFusedDevice(t)
		} else {
			_, p = bootCachedDevice(t, nil)
		}
		seedGuestFile(t, p, "arms.dat", content)
		buf := make([]byte, len(content))
		res := p.Chain(openStatReadCloseChain("arms.dat", buf)...)
		for i, r := range res {
			if !r.Ok() {
				t.Fatalf("fused=%v link %d: %v", fused, i, r.Err)
			}
		}
		return res[1].Ret, res[2].Ret, buf
	}

	fStat, fRead, fBuf := run(t, true)
	uStat, uRead, uBuf := run(t, false)
	if fStat != uStat || fRead != uRead || !bytes.Equal(fBuf, uBuf) {
		t.Fatalf("fused (stat=%d read=%d %q) != unfused (stat=%d read=%d %q)",
			fStat, fRead, fBuf, uStat, uRead, uBuf)
	}
}

// TestChainInvalidBinding: a forward or self reference is rejected with
// EINVAL on every link, before anything executes.
func TestChainInvalidBinding(t *testing.T) {
	_, p := bootFusedDevice(t)
	results := p.Chain(
		ChainCall{Args: kernel.Args{Nr: abi.SysFstat}, FDFrom: 1},
		ChainCall{Args: kernel.Args{Nr: abi.SysClose}, FDFrom: -1},
	)
	for i, r := range results {
		if !errors.Is(r.Err, abi.EINVAL) {
			t.Fatalf("link %d err = %v, want EINVAL", i, r.Err)
		}
	}
}

// specWorkload runs n open→fstat→pread→close iterations through the
// ordinary per-call API, which is what the pattern detector watches.
func specWorkload(t *testing.T, p *Proc, name string, size, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		fd := mustOpen(t, p, name, abi.ORdWr)
		st := p.Syscall(kernel.Args{Nr: abi.SysFstat, FD: fd})
		if !st.Ok() || st.Ret != int64(size) {
			t.Fatalf("iter %d fstat: ret=%d err=%v, want size %d", i, st.Ret, st.Err, size)
		}
		got := mustPread(t, p, fd, size, 0)
		if len(got) != size {
			t.Fatalf("iter %d pread got %d bytes, want %d", i, len(got), size)
		}
		if err := p.Close(fd); err != nil {
			t.Fatalf("iter %d close: %v", i, err)
		}
	}
}

// TestFusionSpeculationServes: after the detector has seen the
// open→fstat→pread shape twice, later opens are speculatively fused and
// the trailing calls are served from the buffered chain results —
// without changing what the app observes.
func TestFusionSpeculationServes(t *testing.T) {
	d, p := bootFusedDevice(t)
	content := bytes.Repeat([]byte("s"), 512)
	seedGuestFile(t, p, "spec.dat", content)

	specWorkload(t, p, "spec.dat", len(content), 6)

	fs := d.Layer.Stats().Fusion
	if fs.PatternHits == 0 {
		t.Fatal("detector saw 6 open→fstat sequences but recorded no pattern hits")
	}
	if fs.SpecServed == 0 {
		t.Fatalf("no speculatively-served calls after 6 hot iterations: %+v", fs)
	}
	if fs.Mispredicts != 0 {
		t.Fatalf("mispredicts on a perfectly repeating workload: %+v", fs)
	}
	if fs.Submitted != fs.Completed+fs.Failed {
		t.Fatalf("accounting identity broken: %+v", fs)
	}
}

// TestFusionMispredict: when the app breaks the learned shape, the
// buffered speculative results are discarded, the live call takes the
// normal path, and the detector's confidence is reset.
func TestFusionMispredict(t *testing.T) {
	d, p := bootFusedDevice(t)
	content := bytes.Repeat([]byte("m"), 256)
	seedGuestFile(t, p, "mis.dat", content)

	// Prime the open→fstat detector.
	specWorkload(t, p, "mis.dat", len(content), 3)

	before := d.Layer.Stats().Fusion
	if before.SpecServed == 0 {
		t.Fatalf("workload did not reach speculation: %+v", before)
	}

	// Divergent iteration: open then pwrite, not fstat.
	fd := mustOpen(t, p, "mis.dat", abi.ORdWr)
	mustPwrite(t, p, fd, []byte("DIVERGED"), 0)
	if err := p.Close(fd); err != nil {
		t.Fatal(err)
	}

	fs := d.Layer.Stats().Fusion
	if fs.Mispredicts == 0 && fs.SpecDropped == before.SpecDropped {
		t.Fatalf("divergence neither mispredicted nor dropped the queue: before=%+v after=%+v", before, fs)
	}

	// The write landed despite the discarded speculation.
	fd2 := mustOpen(t, p, "mis.dat", abi.ORdWr)
	got := mustPread(t, p, fd2, 8, 0)
	if !bytes.Equal(got, []byte("DIVERGED")) {
		t.Fatalf("post-mispredict read = %q, want %q", got, "DIVERGED")
	}
	if err := p.Close(fd2); err != nil {
		t.Fatal(err)
	}
}

// TestFusionDeterminism: the pattern detector is scheduled by counters,
// not wall-clock or randomness — two identical runs fuse identically.
func TestFusionDeterminism(t *testing.T) {
	runOnce := func(t *testing.T) FusionStats {
		d, p := bootFusedDevice(t)
		content := bytes.Repeat([]byte("d"), 1024)
		seedGuestFile(t, p, "det.dat", content)
		specWorkload(t, p, "det.dat", len(content), 8)
		return d.Layer.Stats().Fusion
	}
	a := runOnce(t)
	b := runOnce(t)
	if a != b {
		t.Fatalf("same-seed runs diverged:\n  a=%+v\n  b=%+v", a, b)
	}
}

// BenchmarkFusion_OpenStatReadClose: the canonical fused chain — the
// evaluate fusion experiment's fused arm, as a smoke-runnable benchmark.
func BenchmarkFusion_OpenStatReadClose(b *testing.B) {
	p := benchFusionDevice(b, true)
	content := bytes.Repeat([]byte("b"), 4096)
	benchSeed(b, p, "bench.dat", content)
	buf := make([]byte, len(content))
	chain := openStatReadCloseChain("bench.dat", buf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := p.Chain(chain...)
		for j := range res {
			if !res[j].Ok() {
				b.Fatalf("iter %d link %d: %v", i, j, res[j].Err)
			}
		}
	}
}

// BenchmarkFusion_UnfusedOpenStatReadClose: the same logical chain as
// four independent ring round trips — the comparison arm.
func BenchmarkFusion_UnfusedOpenStatReadClose(b *testing.B) {
	p := benchFusionDevice(b, false)
	content := bytes.Repeat([]byte("b"), 4096)
	benchSeed(b, p, "bench.dat", content)
	buf := make([]byte, len(content))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fd, err := p.Open("bench.dat", abi.ORdWr, 0o600)
		if err != nil {
			b.Fatal(err)
		}
		if st := p.Syscall(kernel.Args{Nr: abi.SysFstat, FD: fd}); !st.Ok() {
			b.Fatal(st.Err)
		}
		if _, err := p.PreadInto(fd, buf, 0); err != nil {
			b.Fatal(err)
		}
		if err := p.Close(fd); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSeed(b *testing.B, p *Proc, name string, content []byte) {
	b.Helper()
	fd, err := p.Open(name, abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.Pwrite(fd, content, 0); err != nil {
		b.Fatal(err)
	}
	if err := p.Close(fd); err != nil {
		b.Fatal(err)
	}
}

func benchFusionDevice(b *testing.B, fused bool) *Proc {
	b.Helper()
	d, err := NewDevice(Options{
		Mode:         ModeAnception,
		RingDepth:    64,
		RingWorkers:  1,
		FusionEnable: fused,
	})
	if err != nil {
		b.Fatal(err)
	}
	app, err := d.InstallApp(android.AppSpec{Package: "com.example.fusionbench"})
	if err != nil {
		b.Fatal(err)
	}
	p, err := d.Launch(app)
	if err != nil {
		b.Fatal(err)
	}
	return p
}
