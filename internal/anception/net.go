package anception

import (
	"errors"
	"fmt"
	"time"

	"anception/internal/abi"
	"anception/internal/kernel"
	"anception/internal/marshal"
	"anception/internal/sim"
)

// This file implements the layer side of the redirected network fast
// path (DESIGN.md §14): socket operations ride the async ring as compact
// fixed-layout frames (marshal.EncodeSockOp) small enough for the
// inline slot window, bulk send/recv payloads above GrantThreshold move
// by grant reference like file I/O, and accept4/epoll_wait completions
// carry whole batches of descriptors. Per-slot deadlines, degraded-mode
// EAGAIN, and EHOSTDOWN-on-restart semantics match the file and binder
// paths slot-for-slot; the supervisor's SocketDrainer hook sits between
// the ring and binder drains in the post-restart order.

// DefaultNetBatch is the per-completion cap on batched accepted
// connections / readiness events when Options.NetBatch is unset.
const DefaultNetBatch = 16

// NetPathStats counts network fast-path activity, surfaced via
// LayerStats.Net.
type NetPathStats struct {
	// Submitted/Completed/Failed is the socket-op accounting identity:
	// every forwarded socket op is submitted exactly once and ends as
	// either a completion (a guest-executed result, including guest
	// errnos like EAGAIN on an empty queue) or a failure (degraded-mode
	// rejection, transport loss, deadline, EHOSTDOWN drain).
	Submitted int64
	Completed int64
	Failed    int64
	// RingOps counts socket ops that rode the compact sockop ring frame
	// (the rest took the synchronous TLV path).
	RingOps int64
	// Batches / BatchedFDs count batched accept4/epoll_wait completions
	// and the descriptors they carried — one ring completion, N fds.
	Batches    int64
	BatchedFDs int64
	// Drains counts DrainSockets invocations (CVM restart hook).
	Drains int64
}

// isSockCall reports the socket ops the network fast path owns on remote
// descriptors. setsockopt-style attribute calls stay on the generic
// forward path — they are rare and carry odd argument shapes.
func isSockCall(nr abi.SyscallNr) bool {
	switch nr {
	case abi.SysBind, abi.SysConnect, abi.SysListen, abi.SysShutdownSk,
		abi.SysSend, abi.SysSendto, abi.SysRecv, abi.SysRecvfrom:
		return true
	default:
		return false
	}
}

// netBatchLimit clamps a caller's accept/epoll batch request to the
// configured per-completion cap.
func (l *Layer) netBatchLimit(want int) int {
	if want <= 0 || want > l.netBatch {
		return l.netBatch
	}
	return want
}

// forwardSock forwards one socket op (guest descriptor already
// translated) and maintains the Submitted = Completed + Failed identity.
func (l *Layer) forwardSock(st *layerState, t *kernel.Task, args *kernel.Args) kernel.Result {
	l.counters.sockSubmitted.Add(1)
	res, failed := l.forwardSockInner(st, t, args)
	if failed {
		l.counters.sockFailed.Add(1)
	} else {
		l.counters.sockCompleted.Add(1)
	}
	return res
}

// forwardSockInner routes the op: over the ring it travels as a compact
// sockop frame in an SQ slot (inline when small — no chunk copies); on
// the synchronous channel it falls back to the generic TLV forward,
// which is exactly the pinned uncached baseline.
func (l *Layer) forwardSockInner(st *layerState, t *kernel.Task, args *kernel.Args) (kernel.Result, bool) {
	ring, async := st.transport.(marshal.AsyncTransport)
	if !async || l.policy.forceSync() {
		// forwardOn routes to the synchronous channel under a forced-sync
		// override (the fallback channel when both are mounted).
		res := l.forwardOn(st, t, args)
		return res, sockTransportFailure(res.Err)
	}
	if !l.enterGuestCall(st) {
		l.counters.failedFast.Add(1)
		return kernel.Result{Ret: -1, Err: fmt.Errorf("container circuit breaker open: %w", abi.EAGAIN)}, true
	}
	defer l.exitGuestCall()
	p, err := st.proxies.Ensure(t)
	if err != nil {
		if errors.Is(err, abi.EHOSTDOWN) {
			l.counters.hostDown.Add(1)
		}
		return kernel.Result{Ret: -1, Err: fmt.Errorf("enroll proxy: %w", err)}, true
	}
	l.counters.redirected.Add(1)
	l.counters.sockRing.Add(1)
	if l.trace != nil {
		l.trace.Record(sim.EvRedirect, "redirect %s pid=%d -> proxy %d (sock ring)", args.Nr, t.PID, p.PID)
	}

	// Read-style ops ship only the size; the bytes come home in the
	// reply (inline when they fit the CQ descriptor area).
	enc := *args
	if isReadLike(args.Nr) && enc.Buf != nil {
		enc.Size = len(enc.Buf)
		enc.Buf = nil
	}
	payload := marshal.EncodeSockOp(&enc)
	l.clock.Advance(time.Duration(len(payload)) * l.model.MarshalPerByte)

	start := l.clock.Now()
	pending, serr := ring.Submit(payload, ringKey(t, args), func(req []byte) []byte {
		decoded, derr := marshal.DecodeSockOp(req)
		if derr != nil {
			return marshal.EncodeResult(kernel.Result{Ret: -1, Err: abi.EINVAL})
		}
		if isReadLike(decoded.Nr) && decoded.Buf == nil && decoded.Size > 0 {
			decoded.Buf = make([]byte, decoded.Size)
		}
		resp := marshal.EncodeResult(st.proxies.ExecuteDrained(p, *decoded))
		if st.tamper != nil {
			resp = st.tamper(resp)
		}
		return resp
	})
	if serr != nil {
		return l.transportFailure(t, args, start, serr), true
	}
	respBytes, werr := pending.Wait()
	if werr != nil {
		return l.transportFailure(t, args, start, werr), true
	}
	if l.clock.Now()-start > l.deadline {
		l.counters.timedOut.Add(1)
		if l.trace != nil {
			l.trace.Record(sim.EvTimeout, "%s pid=%d completed past %v deadline", args.Nr, t.PID, l.deadline)
		}
		return kernel.Result{Ret: -1, Err: fmt.Errorf("call exceeded %v deadline: %w", l.deadline, abi.ETIMEDOUT)}, true
	}
	res, derr := marshal.DecodeResult(respBytes)
	if derr != nil {
		return kernel.Result{Ret: -1, Err: derr}, true
	}
	return res, false
}

// sockTransportFailure classifies a synchronous-path error as a
// transport-level failure (vs. a guest-executed errno, which counts as a
// completion).
func sockTransportFailure(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, abi.EHOSTDOWN) || errors.Is(err, abi.ETIMEDOUT) ||
		errors.Is(err, abi.ENXIO) || errors.Is(err, abi.EIO)
}

// handleAccept4 forwards a batched accept: the guest drains up to
// Args.Size pending connections in one ring completion and the reply's
// fd list is re-installed as host remote descriptors.
func (l *Layer) handleAccept4(t *kernel.Task, args *kernel.Args) (kernel.Result, bool) {
	e := t.FD(args.FD)
	if e == nil || e.Kind != kernel.FDRemote {
		return kernel.Result{}, false
	}
	st := l.currentState()
	fwd := *args
	fwd.FD = e.GuestFD
	fwd.Size = l.netBatchLimit(args.Size)
	res := l.forwardSock(st, t, &fwd)
	if !res.Ok() {
		return res, true
	}
	guestFDs, derr := abi.DecodeFDList(res.Data)
	if derr != nil {
		return kernel.Result{Ret: -1, Err: derr}, true
	}
	hostFDs := make([]int, len(guestFDs))
	for i, gfd := range guestFDs {
		hostFDs[i] = t.InstallFD(&kernel.FDEntry{Kind: kernel.FDRemote, GuestFD: gfd, Path: "sock:accepted"})
	}
	l.counters.sockBatches.Add(1)
	l.counters.sockBatchedFDs.Add(int64(len(hostFDs)))
	return kernel.Result{Ret: int64(len(hostFDs)), Data: abi.EncodeFDList(hostFDs)}, true
}

// handleEpollWait forwards a batched readiness poll and translates the
// returned guest descriptors back to the caller's host descriptors.
func (l *Layer) handleEpollWait(t *kernel.Task, args *kernel.Args) (kernel.Result, bool) {
	e := t.FD(args.FD)
	if e == nil || e.Kind != kernel.FDRemote {
		return kernel.Result{}, false
	}
	st := l.currentState()
	fwd := *args
	fwd.FD = e.GuestFD
	fwd.Size = l.netBatchLimit(args.Size)
	res := l.forwardSock(st, t, &fwd)
	if !res.Ok() || len(res.Data) == 0 {
		return res, true
	}
	guestFDs, derr := abi.DecodeFDList(res.Data)
	if derr != nil {
		return kernel.Result{Ret: -1, Err: derr}, true
	}
	// Reverse-translate guest fds: scan the task's descriptor table once.
	byGuest := make(map[int]int)
	for hostFD, entry := range t.FDs() {
		if entry.Kind == kernel.FDRemote {
			byGuest[entry.GuestFD] = hostFD
		}
	}
	hostFDs := make([]int, 0, len(guestFDs))
	for _, gfd := range guestFDs {
		if hfd, ok := byGuest[gfd]; ok {
			hostFDs = append(hostFDs, hfd)
		}
	}
	l.counters.sockBatches.Add(1)
	l.counters.sockBatchedFDs.Add(int64(len(hostFDs)))
	return kernel.Result{Ret: int64(len(hostFDs)), Data: abi.EncodeFDList(hostFDs)}, true
}

// handleEpollCtl translates both descriptors (the epoll instance and the
// watched socket) to their guest numbers before forwarding.
func (l *Layer) handleEpollCtl(t *kernel.Task, args *kernel.Args) (kernel.Result, bool) {
	e := t.FD(args.FD)
	if e == nil || e.Kind != kernel.FDRemote {
		return kernel.Result{}, false
	}
	target := t.FD(args.FD2)
	if target == nil || target.Kind != kernel.FDRemote {
		return kernel.Result{Ret: -1, Err: abi.EBADF}, true
	}
	st := l.currentState()
	fwd := *args
	fwd.FD = e.GuestFD
	fwd.FD2 = target.GuestFD
	return l.forwardSock(st, t, &fwd), true
}

// DrainSockets rolls the network fast path to a new CVM boot generation:
// ring slots still carrying socket ops against the old boot fail
// EHOSTDOWN via the ring's generation check, and the guest stack's
// generation is rolled so surviving sockets re-run the then-current
// ConnectPolicy on their next operation. Called on CVM restart
// (ReplaceGuest and the supervisor's SocketDrainer hook, ordered after
// the ring re-arm and before the binder drain).
func (l *Layer) DrainSockets(gen int) {
	l.counters.sockDrains.Add(1)
	if ring, ok := l.currentState().transport.(marshal.AsyncTransport); ok {
		ring.Rearm(gen)
	}
	if g := l.guestKernel(); g != nil {
		g.Net().SetGeneration(uint64(gen))
	}
	if l.trace != nil {
		l.trace.Record(sim.EvRedirect, "socket fast path drained to generation %d", gen)
	}
}

// NetStats snapshots the network fast-path counters.
func (l *Layer) NetStats() NetPathStats {
	return NetPathStats{
		Submitted:  l.counters.sockSubmitted.Load(),
		Completed:  l.counters.sockCompleted.Load(),
		Failed:     l.counters.sockFailed.Load(),
		RingOps:    l.counters.sockRing.Load(),
		Batches:    l.counters.sockBatches.Load(),
		BatchedFDs: l.counters.sockBatchedFDs.Load(),
		Drains:     l.counters.sockDrains.Load(),
	}
}
