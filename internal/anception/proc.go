package anception

import (
	"fmt"
	"time"

	"anception/internal/abi"
	"anception/internal/android"
	"anception/internal/binder"
	"anception/internal/kernel"
	"anception/internal/netstack"
)

// Proc is the system-call interface a running app uses: a thin, typed
// wrapper over kernel.Invoke bound to the app's task. It is the outermost
// public API the examples and workloads program against — the simulated
// analogue of libc.
type Proc struct {
	device *Device
	kernel *kernel.Kernel
	Task   *kernel.Task
	App    *App
}

// Kernel returns the kernel this process traps into.
func (p *Proc) Kernel() *kernel.Kernel { return p.kernel }

// Device returns the owning device.
func (p *Proc) Device() *Device { return p.device }

func (p *Proc) invoke(args kernel.Args) kernel.Result {
	return p.kernel.Invoke(p.Task, args)
}

// Syscall issues a raw system call; the exploit corpus uses it for calls
// without a typed wrapper.
func (p *Proc) Syscall(args kernel.Args) kernel.Result {
	return p.invoke(args)
}

// Chain submits a dependent system-call chain (DESIGN.md §17). On an
// Anception device with the async ring, the whole chain executes
// guest-side off one linked ring submission — one doorbell, one
// completion — with FDFrom/UseCursor bindings resolved by the guest. On
// other platforms (or when fusion cannot apply) the links dispatch one
// call at a time with the bindings resolved host-side; either way the
// result slice is positional and a failed link short-circuits the rest
// with its error.
func (p *Proc) Chain(calls ...ChainCall) []kernel.Result {
	if p.device != nil && p.device.Layer != nil && p.kernel == p.device.Host {
		return p.device.Layer.Chain(p.Task, calls)
	}
	if err := validateChain(calls); err != nil {
		results := make([]kernel.Result, len(calls))
		for i := range results {
			results[i] = kernel.Result{Ret: -1, Err: err}
		}
		return results
	}
	return runChainUnfused(p.invoke, calls)
}

// --- identity and process control ---

// Getpid returns the process ID.
func (p *Proc) Getpid() int { return int(p.invoke(kernel.Args{Nr: abi.SysGetpid}).Ret) }

// Getuid returns the real user ID.
func (p *Proc) Getuid() int { return int(p.invoke(kernel.Args{Nr: abi.SysGetuid}).Ret) }

// Setuid attempts a UID change (which Anception punishes per footnote 3).
func (p *Proc) Setuid(uid int) error {
	return p.invoke(kernel.Args{Nr: abi.SysSetuid, UID: uid}).Err
}

// Fork clones the process and returns the child's Proc.
func (p *Proc) Fork() (*Proc, error) {
	res := p.invoke(kernel.Args{Nr: abi.SysFork})
	if !res.Ok() {
		return nil, res.Err
	}
	child := p.kernel.Task(int(res.Ret))
	return &Proc{device: p.device, kernel: p.kernel, Task: child, App: p.App}, nil
}

// Execve replaces the process image.
func (p *Proc) Execve(path string, argv ...string) error {
	return p.invoke(kernel.Args{Nr: abi.SysExecve, Path: path, Argv: argv}).Err
}

// Exit terminates the process.
func (p *Proc) Exit(code int) {
	p.invoke(kernel.Args{Nr: abi.SysExit, Size: code})
}

// Wait reaps one zombie child, returning its PID.
func (p *Proc) Wait() (int, error) {
	res := p.invoke(kernel.Args{Nr: abi.SysWait4})
	return int(res.Ret), res.Err
}

// Kill sends a signal to a process.
func (p *Proc) Kill(pid, sig int) error {
	return p.invoke(kernel.Args{Nr: abi.SysKill, TargetPID: pid, Sig: sig}).Err
}

// Chdir changes the working directory.
func (p *Proc) Chdir(path string) error {
	return p.invoke(kernel.Args{Nr: abi.SysChdir, Path: path}).Err
}

// Umask sets the file-creation mask and returns the previous one.
func (p *Proc) Umask(mask abi.FileMode) abi.FileMode {
	return abi.FileMode(p.invoke(kernel.Args{Nr: abi.SysUmask, Mode: mask}).Ret)
}

// Nanosleep advances simulated time.
func (p *Proc) Nanosleep(d time.Duration) {
	p.invoke(kernel.Args{Nr: abi.SysNanosleep, Off: int64(d)})
}

// Compute models user-space CPU work: units are abstract operation counts
// converted by the latency model. No kernel entry occurs.
func (p *Proc) Compute(units int64) {
	p.device.Clock.Advance(time.Duration(units) * p.device.Model.CPUPerUnit)
}

// --- files ---

// Open opens a path.
func (p *Proc) Open(path string, flags abi.OpenFlag, mode abi.FileMode) (int, error) {
	res := p.invoke(kernel.Args{Nr: abi.SysOpen, Path: path, Flags: flags, Mode: mode})
	if !res.Ok() {
		return -1, res.Err
	}
	return res.FD, nil
}

// Close closes a descriptor.
func (p *Proc) Close(fd int) error {
	return p.invoke(kernel.Args{Nr: abi.SysClose, FD: fd}).Err
}

// Read reads up to n bytes from fd.
func (p *Proc) Read(fd int, n int) ([]byte, error) {
	buf := make([]byte, n)
	res := p.invoke(kernel.Args{Nr: abi.SysRead, FD: fd, Buf: buf})
	if !res.Ok() {
		return nil, res.Err
	}
	return buf[:res.Ret], nil
}

// Write writes data to fd.
func (p *Proc) Write(fd int, data []byte) (int, error) {
	res := p.invoke(kernel.Args{Nr: abi.SysWrite, FD: fd, Buf: data})
	return int(res.Ret), res.Err
}

// Pread reads at an explicit offset.
func (p *Proc) Pread(fd int, n int, off int64) ([]byte, error) {
	buf := make([]byte, n)
	res := p.invoke(kernel.Args{Nr: abi.SysPread64, FD: fd, Buf: buf, Off: off})
	if !res.Ok() {
		return nil, res.Err
	}
	return buf[:res.Ret], nil
}

// Pwrite writes at an explicit offset.
func (p *Proc) Pwrite(fd int, data []byte, off int64) (int, error) {
	res := p.invoke(kernel.Args{Nr: abi.SysPwrite64, FD: fd, Buf: data, Off: off})
	return int(res.Ret), res.Err
}

// PreadInto reads at an explicit offset into a caller-owned buffer —
// the zero-copy grant path pins exactly these pages, and benchmarks
// reuse one buffer across iterations.
func (p *Proc) PreadInto(fd int, buf []byte, off int64) (int, error) {
	res := p.invoke(kernel.Args{Nr: abi.SysPread64, FD: fd, Buf: buf, Off: off})
	return int(res.Ret), res.Err
}

// Readv reads into a vector of caller-owned segments (scatter read),
// returning the total bytes filled.
func (p *Proc) Readv(fd int, iov [][]byte) (int, error) {
	res := p.invoke(kernel.Args{Nr: abi.SysReadv, FD: fd, Iov: iov})
	return int(res.Ret), res.Err
}

// Writev writes a vector of segments (gather write), returning the
// total bytes written.
func (p *Proc) Writev(fd int, iov [][]byte) (int, error) {
	res := p.invoke(kernel.Args{Nr: abi.SysWritev, FD: fd, Iov: iov})
	return int(res.Ret), res.Err
}

// Preadv is Readv at an explicit offset.
func (p *Proc) Preadv(fd int, iov [][]byte, off int64) (int, error) {
	res := p.invoke(kernel.Args{Nr: abi.SysPreadv, FD: fd, Iov: iov, Off: off})
	return int(res.Ret), res.Err
}

// Pwritev is Writev at an explicit offset.
func (p *Proc) Pwritev(fd int, iov [][]byte, off int64) (int, error) {
	res := p.invoke(kernel.Args{Nr: abi.SysPwritev, FD: fd, Iov: iov, Off: off})
	return int(res.Ret), res.Err
}

// Lseek repositions the file offset.
func (p *Proc) Lseek(fd int, off int64, whence int) (int64, error) {
	res := p.invoke(kernel.Args{Nr: abi.SysLseek, FD: fd, Off: off, Whence: whence})
	return res.Ret, res.Err
}

// Stat returns the size of the object at path (the simulation's stat).
func (p *Proc) Stat(path string) (int64, error) {
	res := p.invoke(kernel.Args{Nr: abi.SysStat, Path: path})
	return res.Ret, res.Err
}

// Access checks permissions at path.
func (p *Proc) Access(path string, mode int) error {
	return p.invoke(kernel.Args{Nr: abi.SysAccess, Path: path, Size: mode}).Err
}

// Mkdir creates a directory.
func (p *Proc) Mkdir(path string, mode abi.FileMode) error {
	return p.invoke(kernel.Args{Nr: abi.SysMkdir, Path: path, Mode: mode}).Err
}

// Unlink removes a file.
func (p *Proc) Unlink(path string) error {
	return p.invoke(kernel.Args{Nr: abi.SysUnlink, Path: path}).Err
}

// Rename moves a file.
func (p *Proc) Rename(oldPath, newPath string) error {
	return p.invoke(kernel.Args{Nr: abi.SysRename, Path: oldPath, Path2: newPath}).Err
}

// Readlink reads a symlink (or /proc/<pid>/exe).
func (p *Proc) Readlink(path string) (string, error) {
	res := p.invoke(kernel.Args{Nr: abi.SysReadlink, Path: path})
	if !res.Ok() {
		return "", res.Err
	}
	return string(res.Data), nil
}

// Getdents lists a directory as newline-joined names.
func (p *Proc) Getdents(path string) ([]byte, error) {
	res := p.invoke(kernel.Args{Nr: abi.SysGetdents, Path: path})
	if !res.Ok() {
		return nil, res.Err
	}
	return res.Data, nil
}

// Ftruncate resizes an open file.
func (p *Proc) Ftruncate(fd int, size int64) error {
	return p.invoke(kernel.Args{Nr: abi.SysFtruncate, FD: fd, Off: size}).Err
}

// Fsync flushes a file's dirty pages, returning how many were written.
func (p *Proc) Fsync(fd int) (int, error) {
	res := p.invoke(kernel.Args{Nr: abi.SysFsync, FD: fd})
	return int(res.Ret), res.Err
}

// Sendfile copies n bytes from inFD to outFD in the kernel.
func (p *Proc) Sendfile(outFD, inFD, n int) (int, error) {
	res := p.invoke(kernel.Args{Nr: abi.SysSendfile, FD: outFD, FD2: inFD, Size: n})
	return int(res.Ret), res.Err
}

// --- sockets ---

// Socket creates a socket.
func (p *Proc) Socket(f netstack.Family, t netstack.SockType, proto int) (int, error) {
	res := p.invoke(kernel.Args{Nr: abi.SysSocket, Family: f, SockType: t, Proto: proto})
	if !res.Ok() {
		return -1, res.Err
	}
	return res.FD, nil
}

// Connect connects a socket to an address.
func (p *Proc) Connect(fd int, addr string) error {
	return p.invoke(kernel.Args{Nr: abi.SysConnect, FD: fd, Addr: addr}).Err
}

// Send transmits data on a connected socket.
func (p *Proc) Send(fd int, data []byte) (int, error) {
	res := p.invoke(kernel.Args{Nr: abi.SysSend, FD: fd, Buf: data})
	return int(res.Ret), res.Err
}

// Recv receives up to n bytes.
func (p *Proc) Recv(fd int, n int) ([]byte, error) {
	buf := make([]byte, n)
	res := p.invoke(kernel.Args{Nr: abi.SysRecv, FD: fd, Buf: buf})
	if !res.Ok() {
		return nil, res.Err
	}
	return buf[:res.Ret], nil
}

// RecvInto receives into a caller-owned buffer — the zero-copy grant
// path pins exactly these pages, and benchmarks reuse one buffer.
func (p *Proc) RecvInto(fd int, buf []byte) (int, error) {
	res := p.invoke(kernel.Args{Nr: abi.SysRecv, FD: fd, Buf: buf})
	return int(res.Ret), res.Err
}

// Bind binds a socket to a local address.
func (p *Proc) Bind(fd int, addr string) error {
	return p.invoke(kernel.Args{Nr: abi.SysBind, FD: fd, Addr: addr}).Err
}

// Listen marks a bound socket as accepting connections.
func (p *Proc) Listen(fd, backlog int) error {
	return p.invoke(kernel.Args{Nr: abi.SysListen, FD: fd, Size: backlog}).Err
}

// Accept takes one pending connection, returning the new descriptor.
func (p *Proc) Accept(fd int) (int, error) {
	res := p.invoke(kernel.Args{Nr: abi.SysAccept, FD: fd})
	if !res.Ok() {
		return -1, res.Err
	}
	return res.FD, nil
}

// AcceptBatch drains up to max pending connections in one call (accept4
// batching, DESIGN.md §14) — one ring completion carries the whole fd
// list. max <= 0 asks for the configured batch cap.
func (p *Proc) AcceptBatch(fd, max int) ([]int, error) {
	res := p.invoke(kernel.Args{Nr: abi.SysAccept4, FD: fd, Size: max})
	if !res.Ok() {
		return nil, res.Err
	}
	return abi.DecodeFDList(res.Data)
}

// EpollCreate creates an epoll instance.
func (p *Proc) EpollCreate() (int, error) {
	res := p.invoke(kernel.Args{Nr: abi.SysEpollCreate})
	if !res.Ok() {
		return -1, res.Err
	}
	return res.FD, nil
}

// EpollCtl adds or removes a watched descriptor (op is
// kernel.EpollCtlAdd or kernel.EpollCtlDel).
func (p *Proc) EpollCtl(epfd, op, fd int) error {
	return p.invoke(kernel.Args{Nr: abi.SysEpollCtl, FD: epfd, FD2: fd, Flags: abi.OpenFlag(op)}).Err
}

// EpollWait polls for up to max ready descriptors in one call — batched
// like AcceptBatch, one ring completion carries N readiness events.
func (p *Proc) EpollWait(epfd, max int) ([]int, error) {
	res := p.invoke(kernel.Args{Nr: abi.SysEpollWait, FD: epfd, Size: max})
	if !res.Ok() {
		return nil, res.Err
	}
	if len(res.Data) == 0 {
		return nil, nil
	}
	return abi.DecodeFDList(res.Data)
}

// Shutdown shuts down a connected socket.
func (p *Proc) Shutdown(fd int) error {
	return p.invoke(kernel.Args{Nr: abi.SysShutdownSk, FD: fd}).Err
}

// --- memory ---

// Brk grows the heap to end (0 queries) and returns the break.
func (p *Proc) Brk(end uint64) (uint64, error) {
	res := p.invoke(kernel.Args{Nr: abi.SysBrk, Vaddr: end})
	return uint64(res.Ret), res.Err
}

// MapAnon maps pages of anonymous memory.
func (p *Proc) MapAnon(pages, prot int, tag string) (uint64, error) {
	res := p.invoke(kernel.Args{Nr: abi.SysMmap2, Pages: pages, Prot: prot, Tag: tag})
	if !res.Ok() {
		return 0, res.Err
	}
	return uint64(res.Ret), nil
}

// MapFixed maps pages at an exact address (MAP_FIXED) — address zero is
// the null-page shellcode staging exploits use.
func (p *Proc) MapFixed(addr uint64, pages, prot int) error {
	res := p.invoke(kernel.Args{Nr: abi.SysMmap2, Vaddr: addr, Pages: pages, Prot: prot, Tag: "fixed"})
	return res.Err
}

// MapFD maps an open file or device descriptor.
func (p *Proc) MapFD(fd, pages, prot int) (uint64, error) {
	res := p.invoke(kernel.Args{Nr: abi.SysMmap2, FD: fd, Pages: pages, Prot: prot})
	if !res.Ok() {
		return 0, res.Err
	}
	return uint64(res.Ret), nil
}

// Msync writes a file-backed mapping back to its file.
func (p *Proc) Msync(addr uint64) error {
	return p.invoke(kernel.Args{Nr: abi.SysMsync, Vaddr: addr}).Err
}

// Munmap removes a mapping.
func (p *Proc) Munmap(addr uint64) error {
	return p.invoke(kernel.Args{Nr: abi.SysMunmap, Vaddr: addr}).Err
}

// Poke performs a user-level store into the process's own memory: no
// system call is involved. A store into a mapping of a device that
// exposes kernel memory is kernel code injection — the kernelchopper
// channel (Section V-A1).
func (p *Proc) Poke(addr uint64, data []byte) error {
	if v := p.Task.AS.VMAAt(addr); v != nil && v.DeviceMemory {
		p.kernel.CompromiseKernel(p.Task, fmt.Sprintf("code injection via %s device mapping", v.Tag))
		return nil
	}
	return p.Task.AS.WriteBytes(p.kernel.Region(), addr, data)
}

// Peek performs a user-level load from the process's own memory.
func (p *Proc) Peek(addr uint64, n int) ([]byte, error) {
	return p.Task.AS.ReadBytes(p.kernel.Region(), addr, n)
}

// PlantSecret writes a secret at the start of the app's heap and returns
// its address; the confidentiality experiments read it back through
// attack channels (which dump memory from the heap base, as real
// credential-scanning malware does).
func (p *Proc) PlantSecret(secret []byte) (uint64, error) {
	needed := kernel.AddrHeapBase + uint64(len(secret)) + abi.PageSize
	if end, err := p.Brk(0); err != nil {
		return 0, err
	} else if end < needed {
		if _, err := p.Brk(needed); err != nil {
			return 0, err
		}
	}
	if err := p.Poke(kernel.AddrHeapBase, secret); err != nil {
		return 0, err
	}
	return kernel.AddrHeapBase, nil
}

// --- binder / UI ---

// OpenBinder opens /dev/binder.
func (p *Proc) OpenBinder() (int, error) {
	return p.Open("/dev/binder", abi.ORdWr, 0)
}

// BinderCall performs one synchronous transaction to a named service.
func (p *Proc) BinderCall(fd int, service string, code uint32, payload []byte) ([]byte, error) {
	arg := binder.EncodeTransaction(binder.Transaction{Service: service, Code: code, Payload: payload})
	res := p.invoke(kernel.Args{Nr: abi.SysIoctl, FD: fd, Request: binder.IocTransact, Buf: arg})
	if !res.Ok() {
		return nil, res.Err
	}
	return res.Data, nil
}

// BinderCallAsync performs one asynchronous (TF_ONE_WAY) transaction: the
// service runs the request but no reply is delivered, and on a pipelined
// bridge the caller does not wait for the CVM at all.
func (p *Proc) BinderCallAsync(fd int, service string, code uint32, payload []byte) error {
	arg := binder.EncodeTransaction(binder.Transaction{Service: service, Code: code, Payload: payload, Oneway: true})
	res := p.invoke(kernel.Args{Nr: abi.SysIoctl, FD: fd, Request: binder.IocTransact, Buf: arg})
	return res.Err
}

// WaitInput blocks for the next UI input event routed to this app.
func (p *Proc) WaitInput(binderFD int) ([]byte, error) {
	return p.BinderCall(binderFD, "window", android.CodeWaitInput, nil)
}

// Draw submits a frame.
func (p *Proc) Draw(binderFD int) error {
	_, err := p.BinderCall(binderFD, "window", android.CodeDraw, nil)
	return err
}

// Shmget creates or finds a shared segment (key IPCPrivate-style 0 for a
// fresh one) of the given page count, returning its id.
func (p *Proc) Shmget(key, pages int) (int, error) {
	res := p.invoke(kernel.Args{Nr: abi.SysShmget, Size: key, Pages: pages})
	if !res.Ok() {
		return -1, res.Err
	}
	return int(res.Ret), nil
}

// Shmat attaches a shared segment and returns its base address.
func (p *Proc) Shmat(id int) (uint64, error) {
	res := p.invoke(kernel.Args{Nr: abi.SysShmat, FD: id})
	if !res.Ok() {
		return 0, res.Err
	}
	return uint64(res.Ret), nil
}

// Shmdt detaches the mapping at addr.
func (p *Proc) Shmdt(addr uint64) error {
	return p.invoke(kernel.Args{Nr: abi.SysShmdt, Vaddr: addr}).Err
}

// Shmctl removes a segment (IPC_RMID).
func (p *Proc) Shmctl(id int) error {
	return p.invoke(kernel.Args{Nr: abi.SysShmctl, FD: id}).Err
}

// RegisterService publishes an app-level binder service under the given
// name. Apps also use binder to talk to each other; such IPCs proceed on
// the host (Section III-D, IPC) because both endpoints live there.
func (p *Proc) RegisterService(name string, handler binder.Handler) error {
	return p.kernel.Binder().Register(name, false, handler)
}

// Ioctl issues a raw ioctl.
func (p *Proc) Ioctl(fd int, req uint32, arg []byte) ([]byte, error) {
	res := p.invoke(kernel.Args{Nr: abi.SysIoctl, FD: fd, Request: req, Buf: arg})
	if !res.Ok() {
		return nil, res.Err
	}
	return res.Data, nil
}

// SendNetlink sends a datagram on a netlink socket descriptor.
func (p *Proc) SendNetlink(fd int, msg []byte) error {
	res := p.invoke(kernel.Args{Nr: abi.SysSend, FD: fd, Buf: msg})
	return res.Err
}
