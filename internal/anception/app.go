package anception

import (
	"fmt"

	"anception/internal/abi"
	"anception/internal/android"
	"anception/internal/kernel"
	"anception/internal/sim"
)

// App is an installed application.
type App struct {
	Package string
	UID     int
	Info    *android.InstalledApp
	device  *Device
}

// InstallApp installs an app on the platform. Under Anception the code
// lands on the host and the private data directory (with unpacked assets)
// in the CVM — the enrollment procedure of Section III-D.
func (d *Device) InstallApp(spec android.AppSpec) (*App, error) {
	var codeFS, dataFS = d.Host.FS(), d.Host.FS()
	switch d.Opts.Mode {
	case ModeAnception:
		if !d.Opts.KeepFSOnHost {
			dataFS = d.Guest.FS()
		}
	case ModeClassicalVM:
		codeFS, dataFS = d.Guest.FS(), d.Guest.FS()
	}
	info, err := d.PM.Install(codeFS, dataFS, spec)
	if err != nil {
		return nil, err
	}
	app := &App{Package: spec.Package, UID: info.UID, Info: info, device: d}
	d.apps[spec.Package] = app
	if d.Trace != nil {
		d.Trace.Record(sim.EvLifecycle, "installed %s uid=%d mode=%s", spec.Package, info.UID, d.Opts.Mode)
	}
	return app, nil
}

// App returns an installed app by package name, or nil.
func (d *Device) App(pkg string) *App { return d.apps[pkg] }

// Launch starts an app and returns its process handle. Under Anception
// the app launches from the trusted host (principle 1), gets its
// redirection entry set, and is enrolled with a proxy in the container.
func (d *Device) Launch(app *App) (*Proc, error) {
	k := d.AppKernel()
	task := k.Spawn(abi.Cred{UID: app.UID, GID: app.UID}, app.Package)
	task.ExecPath = app.Info.CodePath
	task.CWD = app.Info.DataDir

	// Map the app's code read-only and give it an initial heap page.
	if _, err := task.AS.MapAnon(4, kernel.ProtRead|kernel.ProtExec, kernel.VMACode, app.Info.CodePath); err != nil {
		return nil, fmt.Errorf("launch %s: code map: %w", app.Package, err)
	}
	if _, err := task.AS.Brk(kernel.AddrHeapBase + abi.PageSize); err != nil {
		return nil, fmt.Errorf("launch %s: heap: %w", app.Package, err)
	}

	if d.Opts.Mode == ModeAnception {
		task.RE = 1 // ASIM redirection entry
		if _, err := d.Proxies.Ensure(task); err != nil {
			return nil, fmt.Errorf("launch %s: %w", app.Package, err)
		}
	}
	if d.Trace != nil {
		d.Trace.Record(sim.EvLifecycle, "launched %s pid=%d on %s", app.Package, task.PID, k.Name())
	}
	return &Proc{device: d, kernel: k, Task: task, App: app}, nil
}

// LaunchServiceShell returns a Proc wrapping an existing task (used by
// the exploit lab to drive root shells spawned by compromised daemons).
func (d *Device) LaunchServiceShell(k *kernel.Kernel, task *kernel.Task) *Proc {
	return &Proc{device: d, kernel: k, Task: task}
}
