package anception

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"anception/internal/abi"
	"anception/internal/android"
	"anception/internal/kernel"
	"anception/internal/netstack"
	"anception/internal/vfs"
)

// bootCachedDevice boots an Anception device with the redirection cache on.
func bootCachedDevice(t *testing.T, mutate func(*Options)) (*Device, *Proc) {
	t.Helper()
	opts := Options{Mode: ModeAnception, RedirCache: true, Vulns: android.AllVulnerabilities()}
	if mutate != nil {
		mutate(&opts)
	}
	d, err := NewDevice(opts)
	if err != nil {
		t.Fatal(err)
	}
	return d, installAndLaunch(t, d, "com.example.cache")
}

// rootCred reads the guest filesystem directly, bypassing the app.
var rootCred = vfs.Cred{UID: abi.UIDRoot}

func mustOpen(t *testing.T, p *Proc, path string, flags abi.OpenFlag) int {
	t.Helper()
	fd, err := p.Open(path, flags, 0o600)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	return fd
}

func mustPwrite(t *testing.T, p *Proc, fd int, data []byte, off int64) {
	t.Helper()
	n, err := p.Pwrite(fd, data, off)
	if err != nil || n != len(data) {
		t.Fatalf("pwrite: n=%d err=%v", n, err)
	}
}

func mustPread(t *testing.T, p *Proc, fd, n int, off int64) []byte {
	t.Helper()
	got, err := p.Pread(fd, n, off)
	if err != nil {
		t.Fatalf("pread: %v", err)
	}
	return got
}

// TestCacheWriteThenRead: a buffered write is immediately visible to a read
// on the same descriptor, and neither call makes a container round-trip.
func TestCacheWriteThenRead(t *testing.T) {
	d, p := bootCachedDevice(t, nil)
	fd := mustOpen(t, p, "cached.dat", abi.ORdWr|abi.OCreat)

	payload := bytes.Repeat([]byte{0xAB, 0xCD}, 256)
	before := d.Layer.Stats()
	mustPwrite(t, p, fd, payload, 100)
	got := mustPread(t, p, fd, len(payload), 100)
	after := d.Layer.Stats()

	if !bytes.Equal(got, payload) {
		t.Fatalf("read-after-write mismatch: got %d bytes", len(got))
	}
	if after.Redirected != before.Redirected {
		t.Fatalf("buffered write + cached read must not round-trip: redirected %d -> %d",
			before.Redirected, after.Redirected)
	}
	if after.Cache.Hits < before.Cache.Hits+2 {
		t.Fatalf("expected 2 cache hits (write buffer + read), got %+v", after.Cache)
	}
}

// TestCachePartialPageOverlap: overlapping unaligned writes spanning a page
// boundary coalesce and compose correctly, both from the dirty buffer and
// after the data round-trips through the guest.
func TestCachePartialPageOverlap(t *testing.T) {
	d, p := bootCachedDevice(t, nil)
	fd := mustOpen(t, p, "overlap.dat", abi.ORdWr|abi.OCreat)
	psz := cachePageSize

	before := d.Layer.Stats()
	mustPwrite(t, p, fd, []byte("XXXX"), psz-2) // spans pages 0 and 1
	mustPwrite(t, p, fd, []byte("YY"), psz-1)   // overlaps the middle
	mid := d.Layer.Stats()
	if mid.Cache.CoalescedWrites != before.Cache.CoalescedWrites+1 {
		t.Fatalf("overlapping write must coalesce: %+v", mid.Cache)
	}

	// Miss: the range reaches below the dirty extent, forcing a flush,
	// fstat, and fetch — then the composed view must show the merged data.
	got := mustPread(t, p, fd, 6, psz-4)
	want := []byte{0, 0, 'X', 'Y', 'Y', 'X'}
	if !bytes.Equal(got, want) {
		t.Fatalf("composed read = %q, want %q", got, want)
	}

	// Overlay a fresh dirty extent on now-resident pages: hit, no trip.
	mustPwrite(t, p, fd, []byte("ZZ"), psz-3)
	redirBefore := d.Layer.Stats().Redirected
	got = mustPread(t, p, fd, 6, psz-4)
	want = []byte{0, 'Z', 'Z', 'Y', 'Y', 'X'}
	if !bytes.Equal(got, want) {
		t.Fatalf("overlaid read = %q, want %q", got, want)
	}
	if d.Layer.Stats().Redirected != redirBefore {
		t.Fatal("overlaid read on resident pages must be served from host memory")
	}

	// After fsync the guest file must hold the final merged content.
	if _, err := p.Fsync(fd); err != nil {
		t.Fatal(err)
	}
	guest, err := d.Guest.FS().ReadFile(rootCred, p.Task.CWD+"/overlap.dat")
	if err != nil {
		t.Fatal(err)
	}
	wantFile := make([]byte, psz+2)
	copy(wantFile[psz-3:], []byte{'Z', 'Z', 'Y', 'Y', 'X'})
	if !bytes.Equal(guest, wantFile) {
		t.Fatalf("guest file after fsync: %d bytes, tail %q", len(guest), guest[psz-4:])
	}
}

// TestCacheFsyncDurability: buffered data is not in the guest filesystem
// until fsync, and is fully there afterwards.
func TestCacheFsyncDurability(t *testing.T) {
	d, p := bootCachedDevice(t, nil)
	fd := mustOpen(t, p, "durable.dat", abi.ORdWr|abi.OCreat)
	data := bytes.Repeat([]byte("durability"), 300) // 3000 bytes
	mustPwrite(t, p, fd, data, 0)

	guestPath := p.Task.CWD + "/durable.dat"
	beforeSync, err := d.Guest.FS().ReadFile(rootCred, guestPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(beforeSync) != 0 {
		t.Fatalf("write must be buffered host-side before fsync; guest already has %d bytes", len(beforeSync))
	}

	flushesBefore := d.Layer.Stats().Cache.Flushes
	if _, err := p.Fsync(fd); err != nil {
		t.Fatal(err)
	}
	if d.Layer.Stats().Cache.Flushes != flushesBefore+1 {
		t.Fatalf("fsync must flush exactly once: %+v", d.Layer.Stats().Cache)
	}
	afterSync, err := d.Guest.FS().ReadFile(rootCred, guestPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(afterSync, data) {
		t.Fatalf("guest file after fsync has %d bytes, want %d", len(afterSync), len(data))
	}
}

// TestCacheCloseFlushes: close writes buffered data back; a fresh
// descriptor reads it from the guest.
func TestCacheCloseFlushes(t *testing.T) {
	d, p := bootCachedDevice(t, nil)
	fd := mustOpen(t, p, "closeflush.dat", abi.ORdWr|abi.OCreat)
	data := []byte("flushed at last close")
	mustPwrite(t, p, fd, data, 0)
	flushesBefore := d.Layer.Stats().Cache.Flushes
	if err := p.Close(fd); err != nil {
		t.Fatal(err)
	}
	if d.Layer.Stats().Cache.Flushes != flushesBefore+1 {
		t.Fatalf("close must flush buffered data: %+v", d.Layer.Stats().Cache)
	}
	fd2 := mustOpen(t, p, "closeflush.dat", abi.ORdOnly)
	if got := mustPread(t, p, fd2, len(data), 0); !bytes.Equal(got, data) {
		t.Fatalf("reopen read = %q, want %q", got, data)
	}
}

// TestCacheRestartInvalidation: a CVM restart wipes the cache; nothing
// cached against the old container boot is ever served against the new one.
func TestCacheRestartInvalidation(t *testing.T) {
	d, p := bootCachedDevice(t, nil)
	fd := mustOpen(t, p, "restart.dat", abi.ORdWr|abi.OCreat)
	gen1 := []byte("generation-one")
	mustPwrite(t, p, fd, gen1, 0)
	if _, err := p.Fsync(fd); err != nil {
		t.Fatal(err)
	}
	// Warm the page cache.
	if got := mustPread(t, p, fd, len(gen1), 0); !bytes.Equal(got, gen1) {
		t.Fatalf("warm read = %q", got)
	}

	invBefore := d.Layer.Stats().Cache.Invalidations
	if err := d.RestartCVM(); err != nil {
		t.Fatal(err)
	}
	if d.Layer.Stats().Cache.Invalidations <= invBefore {
		t.Fatal("restart must invalidate the redirection cache")
	}

	// The stale descriptor must NOT serve the cached page: the fresh guest
	// has no such fd, so the read must fail rather than return old bytes.
	if got, err := p.Pread(fd, len(gen1), 0); err == nil {
		t.Fatalf("stale-fd read after restart served %q; want an error", got)
	}

	// Mutate the (persistent) container file directly, then reopen: the
	// read must fetch the new content, proving no page survived the wipe.
	gen2 := []byte("generation-two")
	if err := d.Guest.FS().WriteFile(rootCred, p.Task.CWD+"/restart.dat", gen2, 0o600); err != nil {
		t.Fatal(err)
	}
	fd2 := mustOpen(t, p, "restart.dat", abi.ORdWr)
	if got := mustPread(t, p, fd2, len(gen2), 0); !bytes.Equal(got, gen2) {
		t.Fatalf("post-restart read = %q, want %q", got, gen2)
	}
}

// TestCacheDegradedBypass: degraded (circuit-breaker) mode fails fast with
// EAGAIN and never consults the cache, even when it is warm.
func TestCacheDegradedBypass(t *testing.T) {
	d, p := bootCachedDevice(t, nil)
	fd := mustOpen(t, p, "degraded.dat", abi.ORdWr|abi.OCreat)
	data := []byte("warm cache line")
	mustPwrite(t, p, fd, data, 0)
	if got := mustPread(t, p, fd, len(data), 0); !bytes.Equal(got, data) {
		t.Fatalf("warm read = %q", got)
	}

	before := d.Layer.Stats()
	d.Layer.SetDegraded(true)
	_, err := p.Pread(fd, len(data), 0)
	if !errors.Is(err, abi.EAGAIN) {
		t.Fatalf("degraded read err = %v, want EAGAIN", err)
	}
	after := d.Layer.Stats()
	if after.FailedFast != before.FailedFast+1 {
		t.Fatalf("degraded read must fail fast: %+v", after)
	}
	if after.Cache.Hits != before.Cache.Hits || after.Cache.Misses != before.Cache.Misses {
		t.Fatalf("degraded mode must not consult the cache: %+v -> %+v", before.Cache, after.Cache)
	}

	d.Layer.SetDegraded(false)
	if got := mustPread(t, p, fd, len(data), 0); !bytes.Equal(got, data) {
		t.Fatalf("post-recovery read = %q", got)
	}
}

// TestCacheWriteCoalescing: k adjacent page writes merge into one extent
// and flush in a single write-back.
func TestCacheWriteCoalescing(t *testing.T) {
	d, p := bootCachedDevice(t, nil) // read-ahead window 8 pages > 4 written
	fd := mustOpen(t, p, "coalesce.dat", abi.ORdWr|abi.OCreat)

	const k = 4
	all := make([]byte, k*int(cachePageSize))
	before := d.Layer.Stats()
	for i := 0; i < k; i++ {
		page := bytes.Repeat([]byte{byte('a' + i)}, int(cachePageSize))
		copy(all[i*int(cachePageSize):], page)
		mustPwrite(t, p, fd, page, int64(i)*cachePageSize)
	}
	mid := d.Layer.Stats()
	if got := mid.Cache.CoalescedWrites - before.Cache.CoalescedWrites; got != k-1 {
		t.Fatalf("coalesced writes = %d, want %d", got, k-1)
	}
	if mid.Cache.Flushes != before.Cache.Flushes {
		t.Fatalf("%d pages under the %d-page window must stay buffered", k, DefaultReadAheadPages)
	}

	if _, err := p.Fsync(fd); err != nil {
		t.Fatal(err)
	}
	after := d.Layer.Stats()
	if after.Cache.Flushes != mid.Cache.Flushes+1 {
		t.Fatalf("fsync must write the merged extent in one flush: %+v", after.Cache)
	}
	guest, err := d.Guest.FS().ReadFile(rootCred, p.Task.CWD+"/coalesce.dat")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(guest, all) {
		t.Fatalf("guest file = %d bytes, want %d", len(guest), len(all))
	}
}

// TestCacheThresholdFlushBatches: when the buffer reaches the read-ahead
// window it flushes on its own, and disjoint extents ride one batched
// round-trip (one pair of world switches for two writes).
func TestCacheThresholdFlushBatches(t *testing.T) {
	d, p := bootCachedDevice(t, func(o *Options) { o.ReadAheadPages = 2 })
	fd := mustOpen(t, p, "batch.dat", abi.ORdWr|abi.OCreat)
	pageA := bytes.Repeat([]byte{'A'}, int(cachePageSize))
	pageC := bytes.Repeat([]byte{'C'}, int(cachePageSize))

	before := d.Layer.Stats()
	switchesBefore, _ := d.CVM.WorldSwitches()
	mustPwrite(t, p, fd, pageA, 0)
	mustPwrite(t, p, fd, pageC, 2*cachePageSize) // disjoint: 2 extents, hits threshold
	after := d.Layer.Stats()
	switchesAfter, _ := d.CVM.WorldSwitches()

	if after.Cache.Flushes != before.Cache.Flushes+1 {
		t.Fatalf("threshold must trigger exactly one flush: %+v", after.Cache)
	}
	if got := switchesAfter - switchesBefore; got != 1 {
		t.Fatalf("two buffered writes flushed in %d round-trips, want 1 (batched)", got)
	}
	if after.Redirected != before.Redirected+2 {
		t.Fatalf("batch must account both calls: redirected %d -> %d", before.Redirected, after.Redirected)
	}

	guest, err := d.Guest.FS().ReadFile(rootCred, p.Task.CWD+"/batch.dat")
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 3*cachePageSize)
	copy(want, pageA)
	copy(want[2*cachePageSize:], pageC)
	if !bytes.Equal(guest, want) {
		t.Fatalf("guest file = %d bytes, want %d with hole page", len(guest), len(want))
	}
}

// TestCacheReadAhead: the first read of a cold file fetches the read-ahead
// window in one round-trip; the following sequential reads all hit.
func TestCacheReadAhead(t *testing.T) {
	d, p := bootCachedDevice(t, nil)
	fd := mustOpen(t, p, "ra.dat", abi.ORdWr|abi.OCreat)
	pages := DefaultReadAheadPages
	content := make([]byte, pages*int(cachePageSize))
	for i := range content {
		content[i] = byte(i / int(cachePageSize) * 31)
	}
	mustPwrite(t, p, fd, content, 0) // reaches the window: flushes immediately
	if err := p.Close(fd); err != nil {
		t.Fatal(err)
	}

	fd2 := mustOpen(t, p, "ra.dat", abi.ORdOnly)
	before := d.Layer.Stats()
	for i := 0; i < pages; i++ {
		got := mustPread(t, p, fd2, int(cachePageSize), int64(i)*cachePageSize)
		want := content[i*int(cachePageSize) : (i+1)*int(cachePageSize)]
		if !bytes.Equal(got, want) {
			t.Fatalf("page %d content mismatch", i)
		}
	}
	after := d.Layer.Stats()
	if got := after.Cache.Misses - before.Cache.Misses; got != 1 {
		t.Fatalf("sequential scan missed %d times, want 1", got)
	}
	if got := after.Cache.Hits - before.Cache.Hits; got != pages-1 {
		t.Fatalf("sequential scan hit %d times, want %d", got, pages-1)
	}
	if got := after.Cache.ReadAheadPages - before.Cache.ReadAheadPages; got != pages-1 {
		t.Fatalf("read-ahead fetched %d extra pages, want %d", got, pages-1)
	}
}

// TestCacheLRUEviction: clean pages stay under the byte budget; the least
// recently used page is evicted and misses again.
func TestCacheLRUEviction(t *testing.T) {
	d, p := bootCachedDevice(t, func(o *Options) {
		o.ReadAheadPages = 1
		o.CacheBudgetBytes = 2 * cachePageSize
	})
	fd := mustOpen(t, p, "lru.dat", abi.ORdWr|abi.OCreat)
	content := make([]byte, 3*cachePageSize)
	for i := range content {
		content[i] = byte(i)
	}
	mustPwrite(t, p, fd, content, 0) // over the window: flushes immediately
	if err := p.Close(fd); err != nil {
		t.Fatal(err)
	}

	fd2 := mustOpen(t, p, "lru.dat", abi.ORdOnly)
	before := d.Layer.Stats().Cache
	mustPread(t, p, fd2, int(cachePageSize), 0)                      // miss, cache {0}
	mustPread(t, p, fd2, int(cachePageSize), cachePageSize)          // miss, cache {0,1}
	mustPread(t, p, fd2, int(cachePageSize), 2*cachePageSize)        // miss, evicts 0
	mustPread(t, p, fd2, int(cachePageSize), 0)                      // miss again: was evicted
	got := mustPread(t, p, fd2, int(cachePageSize), 2*cachePageSize) // still resident: hit
	after := d.Layer.Stats().Cache

	if misses := after.Misses - before.Misses; misses != 4 {
		t.Fatalf("misses = %d, want 4 (budget eviction forces a refetch)", misses)
	}
	if hits := after.Hits - before.Hits; hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
	if !bytes.Equal(got, content[2*cachePageSize:]) {
		t.Fatal("evicting under budget corrupted a resident page")
	}
}

// TestCacheAttrCache: idempotent path calls are served from the attribute
// cache; writes and unlinks invalidate it.
func TestCacheAttrCache(t *testing.T) {
	d, p := bootCachedDevice(t, nil)
	fd := mustOpen(t, p, "attr.dat", abi.ORdWr|abi.OCreat)
	mustPwrite(t, p, fd, bytes.Repeat([]byte{1}, 100), 0)
	if err := p.Close(fd); err != nil {
		t.Fatal(err)
	}

	sz1, err := p.Stat("attr.dat")
	if err != nil || sz1 != 100 {
		t.Fatalf("stat: size=%d err=%v", sz1, err)
	}
	before := d.Layer.Stats()
	sz2, err := p.Stat("attr.dat")
	if err != nil || sz2 != 100 {
		t.Fatalf("second stat: size=%d err=%v", sz2, err)
	}
	after := d.Layer.Stats()
	if after.Redirected != before.Redirected {
		t.Fatal("repeated stat must be served from the attribute cache")
	}
	if after.Cache.Hits != before.Cache.Hits+1 {
		t.Fatalf("attribute hit not counted: %+v", after.Cache)
	}

	// A buffered write on the path makes the cached size stale: stat must
	// flush and report the new size, not serve the old entry.
	fd2 := mustOpen(t, p, "attr.dat", abi.ORdWr)
	mustPwrite(t, p, fd2, bytes.Repeat([]byte{2}, 250), 0)
	if sz, err := p.Stat("attr.dat"); err != nil || sz != 250 {
		t.Fatalf("stat after buffered write: size=%d err=%v, want 250", sz, err)
	}

	// Unlink purges: a later stat must see ENOENT, never the stale entry.
	if err := p.Close(fd2); err != nil {
		t.Fatal(err)
	}
	if err := p.Unlink("attr.dat"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Stat("attr.dat"); !errors.Is(err, abi.ENOENT) {
		t.Fatalf("stat after unlink err = %v, want ENOENT", err)
	}
}

// TestCacheGetdentsInvalidatedByCreate: a cached directory listing is
// purged when a file is created in it.
func TestCacheGetdentsInvalidatedByCreate(t *testing.T) {
	d, p := bootCachedDevice(t, nil)
	if _, err := p.Getdents("."); err != nil {
		t.Fatal(err)
	}
	before := d.Layer.Stats()
	if _, err := p.Getdents("."); err != nil {
		t.Fatal(err)
	}
	if d.Layer.Stats().Redirected != before.Redirected {
		t.Fatal("repeated getdents must hit the attribute cache")
	}

	fd := mustOpen(t, p, "newfile.dat", abi.ORdWr|abi.OCreat)
	if err := p.Close(fd); err != nil {
		t.Fatal(err)
	}
	names, err := p.Getdents(".")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(names), "newfile.dat") {
		t.Fatalf("listing after create is stale: %q", names)
	}
}

// TestSendfileHugeSizeBounded: a mixed-locality sendfile with a hostile
// 1 GiB size must not allocate a 1 GiB bounce buffer — it chunks, drains
// the real (small) source, and succeeds.
func TestSendfileHugeSizeBounded(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	p := installAndLaunch(t, d, "com.example.sendfile")

	sysFD := mustOpen(t, p, "/system/lib/libc.so", abi.ORdOnly)
	if e := p.Task.FD(sysFD); e == nil || e.Kind == kernel.FDRemote {
		t.Fatal("system library must be a host-local descriptor")
	}
	want, err := d.Host.FS().ReadFile(rootCred, "/system/lib/libc.so")
	if err != nil {
		t.Fatal(err)
	}

	var received []byte
	d.RegisterRemote("sink:1", func(req []byte) []byte {
		received = append(received, req...)
		return nil
	})
	sock, err := p.Socket(netstack.AFInet, netstack.SockStream, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Connect(sock, "sink:1"); err != nil {
		t.Fatal(err)
	}

	n, err := p.Sendfile(sock, sysFD, 1<<30)
	if err != nil {
		t.Fatalf("sendfile: %v", err)
	}
	if n != len(want) {
		t.Fatalf("sendfile moved %d bytes, want the whole %d-byte source", n, len(want))
	}
	if !bytes.Equal(received, want) {
		t.Fatal("sink received corrupted bytes")
	}

	if _, err := p.Sendfile(sock, sysFD, -1); !errors.Is(err, abi.EINVAL) {
		t.Fatalf("negative size err = %v, want EINVAL", err)
	}
}

// TestPingZeroAllocs: the heartbeat is allocation-free in steady state so a
// tight supervisor loop puts no pressure on the host allocator.
func TestPingZeroAllocs(t *testing.T) {
	d, err := NewDevice(Options{Mode: ModeAnception, DisableTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Layer.Ping(); err != nil { // warm the channel frames
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := d.Layer.Ping(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Ping allocates %.1f objects per call, want 0", allocs)
	}
}
