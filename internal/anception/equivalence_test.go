package anception

import (
	"fmt"
	"testing"

	"anception/internal/abi"
	"anception/internal/kernel"
	"anception/internal/sim"
)

// This file checks DESIGN.md invariant 2 with randomized programs:
// redirected system calls observe semantics identical to host execution.
// A deterministic generator produces syscall programs; each program runs
// on stock Android and on Anception, and the observable outcomes
// (results, errnos, data, sizes) must match step for step.

// opKind enumerates the generated operations.
type opKind int

const (
	opOpen opKind = iota
	opWrite
	opRead
	opLseek
	opClose
	opMkdir
	opUnlink
	opRename
	opStat
	opAccess
	opDup
	opChdir
	opUmask
	opGetdents
	opTruncate
	opPipeRoundTrip
	opForkChild
	opExecProbe
	opKindCount
)

// program is a reproducible operation sequence.
type program struct {
	seed uint64
	n    int
}

// runProgram executes the program and returns one normalized observation
// string per step. PIDs and raw pointers never appear in observations;
// file descriptor numbers do, because their allocation is deterministic
// and must itself match across platforms.
func runProgram(t *testing.T, mode Mode, prog program) []string {
	t.Helper()
	return runProgramWithOptions(t, Options{Mode: mode, DisableTrace: true}, prog)
}

func dupArgs(fd int) kernel.Args { return kernel.Args{Nr: abi.SysDup, FD: fd} }

func pipeArgs() kernel.Args { return kernel.Args{Nr: abi.SysPipe} }

func runProgramWithOptions(t *testing.T, opts Options, prog program) []string {
	t.Helper()
	d, err := NewDevice(opts)
	if err != nil {
		t.Fatal(err)
	}
	p := installAndLaunch(t, d, "com.equiv.app")
	rng := sim.NewRNG(prog.seed)

	names := []string{"a", "b", "sub/c", "sub/d", "deep/x/y"}
	dirs := []string{"sub", "deep", "deep/x"}
	var openFDs []int
	var obs []string
	log := func(f string, args ...any) { obs = append(obs, fmt.Sprintf(f, args...)) }
	errName := func(err error) string {
		if err == nil {
			return "ok"
		}
		if errno, ok := err.(abi.Errno); ok {
			return errno.Error()
		}
		return "err"
	}

	for i := 0; i < prog.n; i++ {
		switch opKind(rng.Intn(int(opKindCount))) {
		case opOpen:
			name := names[rng.Intn(len(names))]
			flags := []abi.OpenFlag{
				abi.ORdOnly, abi.OWrOnly | abi.OCreat, abi.ORdWr | abi.OCreat,
				abi.OWrOnly | abi.OCreat | abi.OExcl, abi.OWrOnly | abi.OCreat | abi.OAppend,
			}[rng.Intn(5)]
			fd, err := p.Open(name, flags, 0o600)
			log("open %s %x -> %d %v", name, flags, fd, errName(err))
			if err == nil {
				openFDs = append(openFDs, fd)
			}
		case opWrite:
			if len(openFDs) == 0 {
				continue
			}
			fd := openFDs[rng.Intn(len(openFDs))]
			data := make([]byte, rng.Intn(512)+1)
			rng.Bytes(data)
			n, err := p.Write(fd, data)
			log("write %d %d -> %d %v", fd, len(data), n, errName(err))
		case opRead:
			if len(openFDs) == 0 {
				continue
			}
			fd := openFDs[rng.Intn(len(openFDs))]
			want := rng.Intn(256) + 1
			data, err := p.Read(fd, want)
			log("read %d %d -> %d %q-prefix %v", fd, want, len(data), prefix(data, 8), errName(err))
		case opLseek:
			if len(openFDs) == 0 {
				continue
			}
			fd := openFDs[rng.Intn(len(openFDs))]
			off := int64(rng.Intn(1024))
			pos, err := p.Lseek(fd, off, abi.SeekSet)
			log("lseek %d %d -> %d %v", fd, off, pos, errName(err))
		case opClose:
			if len(openFDs) == 0 {
				continue
			}
			idx := rng.Intn(len(openFDs))
			fd := openFDs[idx]
			openFDs = append(openFDs[:idx], openFDs[idx+1:]...)
			log("close %d -> %v", fd, errName(p.Close(fd)))
		case opMkdir:
			dir := dirs[rng.Intn(len(dirs))]
			log("mkdir %s -> %v", dir, errName(p.Mkdir(dir, 0o700)))
		case opUnlink:
			name := names[rng.Intn(len(names))]
			log("unlink %s -> %v", name, errName(p.Unlink(name)))
		case opRename:
			from := names[rng.Intn(len(names))]
			to := names[rng.Intn(len(names))]
			log("rename %s %s -> %v", from, to, errName(p.Rename(from, to)))
		case opStat:
			name := names[rng.Intn(len(names))]
			size, err := p.Stat(name)
			log("stat %s -> %d %v", name, size, errName(err))
		case opAccess:
			name := names[rng.Intn(len(names))]
			mode := []int{abi.AccessRead, abi.AccessWrite, abi.AccessRead | abi.AccessWrite}[rng.Intn(3)]
			log("access %s %d -> %v", name, mode, errName(p.Access(name, mode)))
		case opDup:
			if len(openFDs) == 0 {
				continue
			}
			fd := openFDs[rng.Intn(len(openFDs))]
			res := p.Syscall(dupArgs(fd))
			log("dup %d -> %d %v", fd, res.FD, errName(res.Err))
			if res.Ok() {
				openFDs = append(openFDs, res.FD)
			}
		case opChdir:
			target := []string{".", "sub", "/data", "deep"}[rng.Intn(4)]
			log("chdir %s -> %v", target, errName(p.Chdir(target)))
		case opUmask:
			mask := abi.FileMode(rng.Intn(0o100))
			old := p.Umask(mask)
			log("umask %o -> %o", mask, old)
		case opGetdents:
			listing, err := p.Getdents(".")
			log("getdents -> %d %v", len(listing), errName(err))
		case opTruncate:
			if len(openFDs) == 0 {
				continue
			}
			fd := openFDs[rng.Intn(len(openFDs))]
			size := int64(rng.Intn(2048))
			log("ftruncate %d %d -> %v", fd, size, errName(p.Ftruncate(fd, size)))
		case opForkChild:
			child, err := p.Fork()
			log("fork -> %v", errName(err))
			if err != nil {
				continue
			}
			cfd, cerr := child.Open("childfile", abi.OWrOnly|abi.OCreat|abi.OAppend, 0o600)
			n, werr := child.Write(cfd, []byte("from-child"))
			log("child-write -> %d %v %v", n, errName(cerr), errName(werr))
			child.Exit(0)
			_, waitErr := p.Wait()
			log("wait -> %v", errName(waitErr))
		case opExecProbe:
			// Re-exec a system binary: host-resident code on both
			// platforms.
			log("exec -> %v", errName(p.Execve("/system/bin/toolbox")))
		case opPipeRoundTrip:
			res := p.Syscall(pipeArgs())
			if !res.Ok() {
				log("pipe -> %v", errName(res.Err))
				continue
			}
			rfd, wfd := int(res.Ret), res.FD
			msg := []byte("pipe-msg")
			_, werr := p.Write(wfd, msg)
			got, rerr := p.Read(rfd, len(msg))
			log("pipe %d %d -> %v %q %v", rfd, wfd, errName(werr), got, errName(rerr))
			_ = p.Close(rfd)
			_ = p.Close(wfd)
		}
	}
	return obs
}

func prefix(b []byte, n int) []byte {
	if len(b) < n {
		return b
	}
	return b[:n]
}

// TestRedirectionEquivalenceProperty runs many random programs on both
// platforms and diffs the observations.
func TestRedirectionEquivalenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence sweep is slow")
	}
	for seed := uint64(1); seed <= 20; seed++ {
		prog := program{seed: seed, n: 60}
		native := runProgram(t, ModeNative, prog)
		anc := runProgram(t, ModeAnception, prog)
		if len(native) != len(anc) {
			t.Fatalf("seed %d: step counts differ: %d vs %d", seed, len(native), len(anc))
		}
		for i := range native {
			if native[i] != anc[i] {
				t.Fatalf("seed %d step %d:\n  native    %s\n  anception %s",
					seed, i, native[i], anc[i])
			}
		}
	}
}

// TestEquivalenceA1HostFS runs the same sweep with the A1 ablation (file
// system kept on the host): semantics must again be identical.
func TestEquivalenceA1HostFS(t *testing.T) {
	prog := program{seed: 99, n: 60}
	native := runProgram(t, ModeNative, prog)
	a1 := runProgramWithOptions(t, Options{Mode: ModeAnception, KeepFSOnHost: true, DisableTrace: true}, prog)
	if len(native) != len(a1) {
		t.Fatalf("step counts differ: %d vs %d", len(native), len(a1))
	}
	for i := range native {
		if native[i] != a1[i] {
			t.Fatalf("step %d:\n  native %s\n  A1     %s", i, native[i], a1[i])
		}
	}
}

// TestEquivalenceClassicalVM: apps inside a classical guest observe the
// same syscall semantics (they run on an identical kernel, just a
// virtualized one).
func TestEquivalenceClassicalVM(t *testing.T) {
	prog := program{seed: 7, n: 60}
	native := runProgram(t, ModeNative, prog)
	classical := runProgram(t, ModeClassicalVM, prog)
	if len(native) != len(classical) {
		t.Fatalf("step counts differ: %d vs %d", len(native), len(classical))
	}
	for i := range native {
		if native[i] != classical[i] {
			t.Fatalf("step %d:\n  native    %s\n  classical %s", i, native[i], classical[i])
		}
	}
}
