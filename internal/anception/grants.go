package anception

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"anception/internal/abi"
	"anception/internal/hypervisor"
	"anception/internal/kernel"
	"anception/internal/marshal"
	"anception/internal/sim"
)

// This file implements the layer side of the zero-copy grant path
// (DESIGN.md §11): bulk redirected I/O ships a scatter-gather descriptor
// naming pinned host pages (hypervisor.GrantTable extents mapped into
// guest space) instead of chunk-copying the payload through the data
// channel. The cutover is by size — calls moving at least
// Options.GrantThreshold bytes take the grant path; smaller calls keep
// the copy path, whose fixed costs are cheaper than a map+shootdown pair.

// GrantPathStats counts zero-copy activity, surfaced via
// LayerStats.Grants.
type GrantPathStats struct {
	// Calls counts redirected calls that took the grant path.
	Calls int
	// Bytes is the payload moved by reference instead of through
	// chunked channel copies.
	Bytes int64
	// CacheBypasses counts cached reads routed around a live write
	// grant (coherence rule: the cache never serves a page overlapping
	// an in-flight granted write).
	CacheBypasses int
	// Table holds the hypervisor grant-table counters (maps, revokes,
	// restart sweeps, stale rejections).
	Table hypervisor.GrantStats
}

// layerGrants is the layer's grant-path state: the table handle, the
// size cutover, and the registry of in-flight write-grant extents the
// redirection cache must route around.
type layerGrants struct {
	table     *hypervisor.GrantTable
	threshold int

	mu   sync.Mutex
	seq  int64
	live map[int64]grantExtent
}

// grantExtent is one in-flight granted write: the guest descriptor and
// the file byte range it targets. off < 0 means the offset is unknown
// (a plain write at the file cursor) and the extent overlaps everything
// on the descriptor.
type grantExtent struct {
	guestFD int
	off     int64
	end     int64
}

func newLayerGrants(table *hypervisor.GrantTable, threshold int) *layerGrants {
	return &layerGrants{
		table:     table,
		threshold: threshold,
		live:      make(map[int64]grantExtent),
	}
}

// registerWrite records an in-flight granted write so concurrent cached
// reads bypass any overlapping pages until it completes.
func (g *layerGrants) registerWrite(guestFD int, off, n int64) int64 {
	ext := grantExtent{guestFD: guestFD, off: off, end: off + n}
	g.mu.Lock()
	g.seq++
	id := g.seq
	g.live[id] = ext
	g.mu.Unlock()
	return id
}

// unregister drops a completed write grant from the live registry.
func (g *layerGrants) unregister(id int64) {
	g.mu.Lock()
	delete(g.live, id)
	g.mu.Unlock()
}

// overlapsLiveWrite reports whether [off, off+n) on a guest descriptor
// overlaps any in-flight granted write.
func (g *layerGrants) overlapsLiveWrite(guestFD int, off, n int64) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, ext := range g.live {
		if ext.guestFD != guestFD {
			continue
		}
		if ext.off < 0 || (off < ext.end && off+n > ext.off) {
			return true
		}
	}
	return false
}

// clearLive empties the registry (CVM restart: the grants backing these
// extents were revoked wholesale).
func (g *layerGrants) clearLive() {
	g.mu.Lock()
	g.live = make(map[int64]grantExtent)
	g.mu.Unlock()
}

// grantEligible reports whether a call should take the zero-copy path:
// grants enabled, a bulk I/O call, and the policy picking the grant
// arm. A non-zero GrantThreshold knob keeps its exact static cutover;
// with the knob unset under AutoTune the cost model's learned
// crossover decides.
func (l *Layer) grantEligible(args *kernel.Args) bool {
	if l.grants == nil {
		return false
	}
	var n int
	switch args.Nr {
	case abi.SysRead, abi.SysWrite, abi.SysPread64, abi.SysPwrite64,
		abi.SysSend, abi.SysSendto, abi.SysRecv, abi.SysRecvfrom:
		n = len(args.Buf)
	case abi.SysReadv, abi.SysWritev, abi.SysPreadv, abi.SysPwritev:
		n = grantIovTotal(args.Iov)
	default:
		return false
	}
	return l.policy.useGrant(n, l.grants.threshold)
}

func grantIovTotal(iov [][]byte) int {
	n := 0
	for _, seg := range iov {
		n += len(seg)
	}
	return n
}

// grantPayloadLen returns the byte count a grant-eligible call moves.
func grantPayloadLen(args *kernel.Args) int64 {
	if len(args.Iov) > 0 {
		return int64(grantIovTotal(args.Iov))
	}
	return int64(len(args.Buf))
}

// RevokeGrants drops every outstanding grant and clears the live-extent
// registry. Called on CVM restart (ReplaceGuest and the supervisor's
// GrantRevoker hook): the guest mappings died with the old container and
// stale refs must fail EHOSTDOWN, never touch reused host pages.
func (l *Layer) RevokeGrants() {
	if l.grants == nil {
		return
	}
	l.grants.table.RevokeAll()
	l.grants.clearLive()
}

// GrantStats snapshots the grant-path counters (zero value when the
// grant path is disabled).
func (l *Layer) GrantStats() GrantPathStats {
	if l.grants == nil {
		return GrantPathStats{}
	}
	return GrantPathStats{
		Calls:         int(l.counters.grantCalls.Load()),
		Bytes:         l.counters.grantBytes.Load(),
		CacheBypasses: int(l.counters.grantCacheBypass.Load()),
		Table:         l.grants.table.Stats(),
	}
}

// forwardGrantFD is the grant path's descriptor-call entry: it keeps the
// redirection cache coherent around the granted extents, then forwards.
// Coherence rules:
//   - buffered (dirty) data for the descriptor is flushed first, so the
//     guest is authoritative before the granted call reads or writes;
//   - a granted write registers its extent while in flight, so a
//     concurrent cached read overlapping it bypasses the cache;
//   - after a granted write lands, the descriptor's clean pages are
//     dropped — the file changed beneath them.
func (l *Layer) forwardGrantFD(st *layerState, t *kernel.Task, e *kernel.FDEntry, args *kernel.Args) kernel.Result {
	if !l.cacheBypassed(st) {
		if res, failed := l.flushFDFor(st, t, e); failed {
			return res
		}
	}
	writeStyle := !isReadLike(args.Nr)
	var liveID int64
	if writeStyle {
		off := args.Off
		if args.Nr == abi.SysWrite || args.Nr == abi.SysWritev ||
			args.Nr == abi.SysSend || args.Nr == abi.SysSendto {
			off = -1 // cursor write: offset unknown, overlap everything
		}
		liveID = l.grants.registerWrite(e.GuestFD, off, grantPayloadLen(args))
	}
	fwd := *args
	fwd.FD = e.GuestFD
	m := l.policy.model
	var start time.Duration
	if m != nil {
		start = l.clock.Now()
	}
	res := l.forwardGrant(st, t, &fwd)
	if m != nil {
		m.observe(classBulk, armGrant, int(grantPayloadLen(args)), l.clock.Now()-start)
	}
	if writeStyle {
		l.grants.unregister(liveID)
		if res.Ok() {
			l.noteGuestFDWrite(e.GuestFD)
		}
	}
	return res
}

// forwardGrant moves one bulk call over the transport by reference: the
// call's buffers are pinned and mapped into the guest as one batched
// grant, a fixed-size scatter-gather descriptor travels the channel in
// place of the payload, the guest resolves the extents back to the
// pinned host pages and executes against them directly, and the reply
// carries only the return count. The grant is revoked (one batched TLB
// shootdown) when the call completes, success or not.
func (l *Layer) forwardGrant(st *layerState, t *kernel.Task, args *kernel.Args) kernel.Result {
	if !l.enterGuestCall(st) {
		l.counters.failedFast.Add(1)
		return kernel.Result{Ret: -1, Err: fmt.Errorf("container circuit breaker open: %w", abi.EAGAIN)}
	}
	defer l.exitGuestCall()
	p, err := st.proxies.Ensure(t)
	if err != nil {
		if errors.Is(err, abi.EHOSTDOWN) {
			l.counters.hostDown.Add(1)
		}
		return kernel.Result{Ret: -1, Err: fmt.Errorf("enroll proxy: %w", err)}
	}

	bufs := args.Iov
	vectored := len(bufs) > 0
	if !vectored {
		bufs = [][]byte{args.Buf}
	}
	// Read-style calls grant writable extents: the guest fills the pinned
	// app pages in place, which is the whole point — the data never
	// traverses the copy channel in either direction.
	writable := isReadLike(args.Nr)
	table := l.grants.table
	refs := table.GrantBatch(bufs, writable)
	defer table.RevokeBatch(refs)

	total := 0
	entries := make([]marshal.SGEntry, len(refs))
	for i, ref := range refs {
		entries[i] = marshal.SGEntry{ID: ref.ID, Gen: ref.Gen, Len: ref.Len}
		total += int(ref.Len)
	}
	desc := &marshal.SGDescriptor{Writable: writable, Entries: entries}

	l.counters.redirected.Add(1)
	l.counters.grantCalls.Add(1)
	l.counters.grantBytes.Add(int64(total))
	if l.trace != nil {
		l.trace.Record(sim.EvGrant, "grant-call %s pid=%d: %d extent(s), %d bytes by reference", args.Nr, t.PID, len(entries), total)
	}

	// The args travel with the bulk payload stripped; the extents move by
	// reference in the descriptor, so the frame stays size-independent.
	enc := *args
	enc.Buf = nil
	enc.Iov = nil
	enc.Size = total
	payload := marshal.EncodeGrantCall(desc, marshal.EncodeArgs(&enc))
	l.clock.Advance(time.Duration(len(payload)) * l.model.MarshalPerByte)

	ring, async := st.transport.(marshal.AsyncTransport)
	handler := func(req []byte) []byte {
		gd, argsPayload, derr := marshal.DecodeGrantCall(req)
		if derr != nil {
			return marshal.EncodeResult(kernel.Result{Ret: -1, Err: abi.EINVAL})
		}
		decoded, derr := marshal.DecodeArgs(argsPayload)
		if derr != nil {
			return marshal.EncodeResult(kernel.Result{Ret: -1, Err: abi.EINVAL})
		}
		resolved := make([][]byte, len(gd.Entries))
		for i, ent := range gd.Entries {
			b, rerr := table.Resolve(hypervisor.GrantRef{ID: ent.ID, Gen: ent.Gen, Len: ent.Len})
			if rerr != nil {
				// Stale generation surfaces as EHOSTDOWN, revoked-in-
				// flight as ENXIO; both travel home as matchable errnos.
				return marshal.EncodeResult(kernel.Result{Ret: -1, Err: rerr})
			}
			if int(ent.Off)+int(ent.Len) > len(b) {
				return marshal.EncodeResult(kernel.Result{Ret: -1, Err: abi.EINVAL})
			}
			resolved[i] = b[ent.Off : ent.Off+ent.Len]
		}
		if len(decoded.Iov) > 0 || decoded.Nr == abi.SysReadv || decoded.Nr == abi.SysWritev ||
			decoded.Nr == abi.SysPreadv || decoded.Nr == abi.SysPwritev {
			decoded.Iov = resolved
		} else {
			decoded.Buf = resolved[0]
			decoded.Size = len(resolved[0])
		}
		var res kernel.Result
		if async {
			res = st.proxies.ExecuteDrained(p, *decoded)
		} else {
			res = st.proxies.Execute(p, *decoded)
		}
		// Zero-copy: a read-style call's bytes already landed in the
		// granted (pinned app) pages; the reply carries only the count.
		res.Data = nil
		resp := marshal.EncodeResult(res)
		if st.tamper != nil {
			resp = st.tamper(resp)
		}
		return resp
	}

	start := l.clock.Now()
	var respBytes []byte
	var terr error
	if async {
		pending, serr := ring.Submit(payload, ringKey(t, args), handler)
		if serr != nil {
			return l.transportFailure(t, args, start, serr)
		}
		respBytes, terr = pending.Wait()
	} else {
		respBytes, terr = st.transport.RoundTrip(payload, handler)
	}
	if terr != nil {
		return l.transportFailure(t, args, start, terr)
	}
	if l.clock.Now()-start > l.deadline {
		l.counters.timedOut.Add(1)
		if l.trace != nil {
			l.trace.Record(sim.EvTimeout, "%s pid=%d completed past %v deadline", args.Nr, t.PID, l.deadline)
		}
		return kernel.Result{Ret: -1, Err: fmt.Errorf("call exceeded %v deadline: %w", l.deadline, abi.ETIMEDOUT)}
	}
	res, derr := marshal.DecodeResult(respBytes)
	if derr != nil {
		return kernel.Result{Ret: -1, Err: derr}
	}
	return res
}
