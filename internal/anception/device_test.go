package anception

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"anception/internal/abi"
	"anception/internal/android"
	"anception/internal/kernel"
	"anception/internal/marshal"
	"anception/internal/netstack"
	"anception/internal/sim"
)

func bootDevice(t *testing.T, mode Mode) *Device {
	t.Helper()
	d, err := NewDevice(Options{Mode: mode, Vulns: android.AllVulnerabilities()})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func installAndLaunch(t *testing.T, d *Device, pkg string) *Proc {
	t.Helper()
	app, err := d.InstallApp(android.AppSpec{Package: pkg})
	if err != nil {
		t.Fatal(err)
	}
	proc, err := d.Launch(app)
	if err != nil {
		t.Fatal(err)
	}
	return proc
}

func TestBootAllModes(t *testing.T) {
	for _, mode := range []Mode{ModeNative, ModeAnception, ModeClassicalVM} {
		t.Run(mode.String(), func(t *testing.T) {
			d := bootDevice(t, mode)
			if d.AppKernel() == nil {
				t.Fatal("no app kernel")
			}
			if d.UIServices().WM == nil {
				t.Fatal("no window manager")
			}
		})
	}
}

func TestAnceptionHostHasOnlyUIServices(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	if d.HostServices.Service("window") == nil || d.HostServices.Service("zygote") == nil {
		t.Fatal("host UI services missing")
	}
	if d.HostServices.Service("vold") != nil {
		t.Fatal("vold must not run on the Anception host")
	}
	if d.GuestServices.Service("vold") == nil {
		t.Fatal("vold missing from the CVM")
	}
	if d.GuestServices.Service("window") != nil {
		t.Fatal("headless CVM must not run the window manager")
	}
}

func TestAppLaunchEnrollsProxy(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	proc := installAndLaunch(t, d, "com.example.app")
	if proc.Task.RE != 1 {
		t.Fatal("redirection entry not set")
	}
	if d.Proxies.ProxyFor(proc.Task.PID) == nil {
		t.Fatal("no proxy enrolled")
	}
	if err := d.Proxies.VerifyBijection(d.Host.Tasks()); err != nil {
		t.Fatalf("bijection: %v", err)
	}
}

func TestFileWritesLandInCVM(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	proc := installAndLaunch(t, d, "com.example.app")

	fd, err := proc.Open("notes.txt", abi.OWrOnly|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Write(fd, []byte("private data")); err != nil {
		t.Fatal(err)
	}
	if err := proc.Close(fd); err != nil {
		t.Fatal(err)
	}

	dataPath := proc.App.Info.DataDir + "/notes.txt"
	root := abi.Cred{UID: abi.UIDRoot}
	// The file exists in the CVM's filesystem...
	if got, err := d.Guest.FS().ReadFile(root, dataPath); err != nil || string(got) != "private data" {
		t.Fatalf("guest file = %q, %v", got, err)
	}
	// ...and NOT on the host.
	if _, err := d.Host.FS().ReadFile(root, dataPath); !errors.Is(err, abi.ENOENT) {
		t.Fatalf("host file should not exist: %v", err)
	}
}

func TestFileReadBackThroughRedirect(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	proc := installAndLaunch(t, d, "com.example.app")
	fd, err := proc.Open("roundtrip.bin", abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("the bytes cross the world switch twice")
	if _, err := proc.Write(fd, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Lseek(fd, 0, abi.SeekSet); err != nil {
		t.Fatal(err)
	}
	got, err := proc.Read(fd, len(payload))
	if err != nil || string(got) != string(payload) {
		t.Fatalf("read back = %q, %v", got, err)
	}
}

func TestSystemLibraryReadsStayOnHost(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	proc := installAndLaunch(t, d, "com.example.app")
	before := d.Layer.Stats().Redirected
	fd, err := proc.Open("/system/lib/libc.so", abi.ORdOnly, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Read(fd, 16); err != nil {
		t.Fatal(err)
	}
	if d.Layer.Stats().Redirected != before {
		t.Fatal("system library access was redirected; principle 1 violated")
	}
}

func TestRedirectSemanticsMatchNative(t *testing.T) {
	// The same program must observe the same results on both platforms
	// (DESIGN.md invariant 2).
	run := func(d *Device) []string {
		proc := installAndLaunch(t, d, "com.same.app")
		var results []string
		log := func(f string, args ...any) { results = append(results, sprintf(f, args...)) }

		if err := proc.Mkdir("sub", 0o700); err != nil {
			log("mkdir err %v", err)
		}
		fd, err := proc.Open("sub/file", abi.OWrOnly|abi.OCreat, 0o600)
		log("open %v", err)
		n, err := proc.Write(fd, []byte("hello"))
		log("write %d %v", n, err)
		log("close %v", proc.Close(fd))
		size, err := proc.Stat("sub/file")
		log("stat %d %v", size, err)
		log("access %v", proc.Access("sub/file", abi.AccessRead))
		log("rename %v", proc.Rename("sub/file", "sub/file2"))
		_, err = proc.Stat("sub/file")
		log("stat-old %v", err)
		d2, err := proc.Getdents("sub")
		log("dents %q %v", d2, err)
		log("unlink %v", proc.Unlink("sub/file2"))
		_, err = proc.Open("sub/file2", abi.ORdOnly, 0)
		log("open-gone %v", err)
		return results
	}

	nat := run(bootDevice(t, ModeNative))
	anc := run(bootDevice(t, ModeAnception))
	if len(nat) != len(anc) {
		t.Fatalf("result counts differ: %d vs %d", len(nat), len(anc))
	}
	for i := range nat {
		if nat[i] != anc[i] {
			t.Errorf("step %d: native %q != anception %q", i, nat[i], anc[i])
		}
	}
}

func TestBlockedCallsDenied(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	proc := installAndLaunch(t, d, "com.example.app")
	res := d.Host.Invoke(proc.Task, kernel.Args{Nr: abi.SysPtrace})
	if !errors.Is(res.Err, abi.EPERM) {
		t.Fatalf("ptrace: %v, want EPERM", res.Err)
	}
	if d.Layer.Stats().Blocked == 0 {
		t.Fatal("blocked counter not incremented")
	}
}

func TestUIDChangeKillsApp(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	proc := installAndLaunch(t, d, "com.example.app")
	if err := proc.Setuid(proc.Getuid()); err != nil {
		t.Fatalf("same-uid setuid should be a no-op: %v", err)
	}
	if err := proc.Setuid(0); !errors.Is(err, abi.EPERM) {
		t.Fatalf("setuid(0): %v, want EPERM", err)
	}
	if proc.Task.CurrentState() != kernel.TaskDead {
		t.Fatal("app not killed after UID change (footnote 3)")
	}
	if d.Proxies.ProxyFor(proc.Task.PID) != nil {
		t.Fatal("proxy survived app kill")
	}
	if d.Layer.Stats().AppsKilled != 1 {
		t.Fatal("kill not counted")
	}
}

func TestForkMirrorsProxyAndSandbox(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	proc := installAndLaunch(t, d, "com.example.app")
	child, err := proc.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if child.Task.RE != 1 {
		t.Fatal("child escaped the redirection sandbox via fork")
	}
	if d.Proxies.ProxyFor(child.Task.PID) == nil {
		t.Fatal("child has no mirrored proxy")
	}
	// The child's file operations land in the CVM like the parent's.
	fd, err := child.Open("childfile", abi.OWrOnly|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := child.Write(fd, []byte("x")); err != nil {
		t.Fatal(err)
	}
	root := abi.Cred{UID: abi.UIDRoot}
	if _, err := d.Guest.FS().StatPath(root, child.App.Info.DataDir+"/childfile"); err != nil {
		t.Fatalf("child write not in CVM: %v", err)
	}
}

func TestExecSystemBinaryRunsFromHost(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	proc := installAndLaunch(t, d, "com.example.app")
	if err := proc.Execve("/system/bin/sh"); err != nil {
		t.Fatal(err)
	}
	if proc.Task.ExecPath != "/system/bin/sh" {
		t.Fatalf("exec path = %q", proc.Task.ExecPath)
	}
}

func TestExecUserCodeGoesThroughExecCache(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	proc := installAndLaunch(t, d, "com.example.app")
	// The app writes a binary into its (CVM-resident) data dir...
	fd, err := proc.Open("dropped", abi.OWrOnly|abi.OCreat, 0o700)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Write(fd, []byte("ELF dropped-code")); err != nil {
		t.Fatal(err)
	}
	if err := proc.Close(fd); err != nil {
		t.Fatal(err)
	}
	// ...and execs it: Anception must copy it to the protected host cache.
	if err := proc.Execve(proc.App.Info.DataDir + "/dropped"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(proc.Task.ExecPath, "/anception/execcache/") {
		t.Fatalf("exec path = %q, want exec cache", proc.Task.ExecPath)
	}
	root := abi.Cred{UID: abi.UIDRoot}
	cached, err := d.Host.FS().ReadFile(root, proc.Task.ExecPath)
	if err != nil || string(cached) != "ELF dropped-code" {
		t.Fatalf("cached binary = %q, %v", cached, err)
	}
}

func TestNetworkRoundTripViaCVM(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	d.RegisterRemote("bank.com:443", func(req []byte) []byte {
		return append([]byte("resp:"), req...)
	})
	proc := installAndLaunch(t, d, "com.bank")
	fd, err := proc.Socket(netstack.AFInet, netstack.SockStream, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.Connect(fd, "bank.com:443"); err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Send(fd, []byte("LOGIN")); err != nil {
		t.Fatal(err)
	}
	got, err := proc.Recv(fd, 64)
	if err != nil || string(got) != "resp:LOGIN" {
		t.Fatalf("recv = %q, %v", got, err)
	}
	if d.Layer.Stats().Redirected == 0 {
		t.Fatal("network calls were not redirected")
	}
	// The remote is registered only on the CVM's stack: reachability
	// proves the socket lives there.
}

func TestUIIoctlPassesThroughAtNativeCost(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	proc := installAndLaunch(t, d, "com.ui.app")
	bfd, err := proc.OpenBinder()
	if err != nil {
		t.Fatal(err)
	}
	before := d.Clock.Now()
	if err := proc.Draw(bfd); err != nil {
		t.Fatal(err)
	}
	anceptionCost := d.Clock.Now() - before

	n := bootDevice(t, ModeNative)
	nproc := installAndLaunch(t, n, "com.ui.app")
	nbfd, err := nproc.OpenBinder()
	if err != nil {
		t.Fatal(err)
	}
	before = n.Clock.Now()
	if err := nproc.Draw(nbfd); err != nil {
		t.Fatal(err)
	}
	nativeCost := n.Clock.Now() - before

	// "UI-related system calls run at essentially native speed."
	diff := anceptionCost - nativeCost
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.01*float64(nativeCost) {
		t.Fatalf("UI ioctl: anception %v vs native %v", anceptionCost, nativeCost)
	}
	if d.Layer.Stats().UIPassthrough == 0 {
		t.Fatal("UI passthrough not counted")
	}
}

func TestBinderBridgeToCVMServiceCostsExtra(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	proc := installAndLaunch(t, d, "com.loc.app")
	bfd, err := proc.OpenBinder()
	if err != nil {
		t.Fatal(err)
	}
	before := d.Clock.Now()
	reply, err := proc.BinderCall(bfd, "location", android.CodeGetLocation, make([]byte, 100))
	if err != nil {
		t.Fatal(err)
	}
	cost := d.Clock.Now() - before
	if !strings.HasPrefix(string(reply), "fix:") {
		t.Fatalf("reply = %q", reply)
	}
	// Section VI-A: a GPS fix returns with ~19 ms added latency (native
	// 12 ms -> ~31 ms).
	if cost < 29_000_000 || cost > 33_000_000 {
		t.Fatalf("bridged binder cost = %v, want ~31ms", cost)
	}
	if d.Layer.Stats().BinderBridged == 0 {
		t.Fatal("bridge not counted")
	}
}

func TestPipeRedirected(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	proc := installAndLaunch(t, d, "com.pipe.app")
	res := d.Host.Invoke(proc.Task, kernel.Args{Nr: abi.SysPipe})
	if !res.Ok() {
		t.Fatal(res.Err)
	}
	rfd, wfd := int(res.Ret), res.FD
	if _, err := proc.Write(wfd, []byte("ipc")); err != nil {
		t.Fatal(err)
	}
	got, err := proc.Read(rfd, 8)
	if err != nil || string(got) != "ipc" {
		t.Fatalf("pipe read = %q, %v", got, err)
	}
	// Both ends are remote descriptors.
	if proc.Task.FD(rfd).Kind != kernel.FDRemote || proc.Task.FD(wfd).Kind != kernel.FDRemote {
		t.Fatal("pipe ends not in the CVM")
	}
}

func TestDupOfRemoteFD(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	proc := installAndLaunch(t, d, "com.dup.app")
	fd, err := proc.Open("f", abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	res := d.Host.Invoke(proc.Task, kernel.Args{Nr: abi.SysDup, FD: fd})
	if !res.Ok() {
		t.Fatal(res.Err)
	}
	if proc.Task.FD(res.FD).Kind != kernel.FDRemote {
		t.Fatal("dup result not remote")
	}
	if _, err := proc.Write(res.FD, []byte("via dup")); err != nil {
		t.Fatal(err)
	}
}

func TestMmapOfCVMFileAndMsyncWriteback(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	proc := installAndLaunch(t, d, "com.mmap.app")
	fd, err := proc.Open("mapped.db", abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	initial := make([]byte, abi.PageSize)
	copy(initial, "initial-file-bytes")
	if _, err := proc.Write(fd, initial); err != nil {
		t.Fatal(err)
	}
	base, err := proc.MapFD(fd, 1, kernel.ProtRead|kernel.ProtWrite)
	if err != nil {
		t.Fatal(err)
	}
	// The mapping is host-resident and reflects file contents.
	got, err := proc.Peek(base, 18)
	if err != nil || string(got) != "initial-file-bytes" {
		t.Fatalf("mapped contents = %q, %v", got, err)
	}
	// Mutate through memory, then msync back to the CVM file.
	if err := proc.Poke(base, []byte("mutated-file-bytes")); err != nil {
		t.Fatal(err)
	}
	if err := proc.Msync(base); err != nil {
		t.Fatal(err)
	}
	root := abi.Cred{UID: abi.UIDRoot}
	data, err := d.Guest.FS().ReadFile(root, proc.App.Info.DataDir+"/mapped.db")
	if err != nil || string(data[:18]) != "mutated-file-bytes" {
		t.Fatalf("file after msync = %q, %v", data[:18], err)
	}
}

func sprintf(f string, args ...any) string {
	return fmt.Sprintf(f, args...)
}

// hangTransport is a stub transport whose every round-trip hangs; layer
// tests use it to exercise deadline handling without the supervisor
// package (which lives upstream of this one).
type hangTransport struct{}

func (hangTransport) RoundTrip(payload []byte, handler marshal.GuestHandler) ([]byte, error) {
	return nil, marshal.ErrHang
}
func (hangTransport) Name() string { return "hang-stub" }

func TestLayerTimedOutCounter(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	app := installAndLaunch(t, d, "com.timeout")
	real := d.Layer.Transport()
	d.Layer.SetTransport(hangTransport{})

	before := d.Clock.Now()
	_, err := app.Open("t.txt", abi.OWrOnly|abi.OCreat, 0o600)
	if !errors.Is(err, abi.ETIMEDOUT) {
		t.Fatalf("err = %v, want ETIMEDOUT", err)
	}
	if got := d.Layer.Stats().TimedOut; got != 1 {
		t.Fatalf("TimedOut = %d, want 1", got)
	}
	// The app was charged exactly its deadline (plus marshal overhead),
	// never more: no redirected call blocks forever.
	if elapsed := d.Clock.Now() - before; elapsed > d.Layer.Deadline()+time.Millisecond {
		t.Fatalf("hung call consumed %v, deadline %v", elapsed, d.Layer.Deadline())
	}
	if d.Trace.Count(sim.EvTimeout) == 0 {
		t.Fatal("no timeout event traced")
	}

	// Restoring the transport restores service.
	d.Layer.SetTransport(real)
	if _, err := app.Open("ok.txt", abi.OWrOnly|abi.OCreat, 0o600); err != nil {
		t.Fatal(err)
	}
}

func TestLayerFailedFastCounter(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	app := installAndLaunch(t, d, "com.degraded")
	d.SetDegraded(true)

	_, err := app.Open("d.txt", abi.OWrOnly|abi.OCreat, 0o600)
	if !errors.Is(err, abi.EAGAIN) {
		t.Fatalf("degraded err = %v, want EAGAIN", err)
	}
	if got := d.Layer.Stats().FailedFast; got != 1 {
		t.Fatalf("FailedFast = %d, want 1", got)
	}
	// Host-class calls are untouched by degraded mode.
	if pid := app.Getpid(); pid <= 0 {
		t.Fatalf("host-class getpid failed under degraded mode: %d", pid)
	}

	d.SetDegraded(false)
	if _, err := app.Open("ok.txt", abi.OWrOnly|abi.OCreat, 0o600); err != nil {
		t.Fatal(err)
	}
}

func TestLayerRestartCounterAndGeneration(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	if got := d.CVM.Generation(); got != 1 {
		t.Fatalf("generation after boot = %d, want 1", got)
	}
	for i := 0; i < 2; i++ {
		if err := d.RestartCVM(); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Layer.Stats().Restarts; got != 2 {
		t.Fatalf("Restarts = %d, want 2", got)
	}
	if got := d.CVM.Generation(); got != 3 {
		t.Fatalf("generation after two restarts = %d, want 3", got)
	}
	if d.Trace.Count(sim.EvWatchdog) == 0 {
		t.Fatal("no watchdog event traced for guest replacement")
	}
}

func TestLayerHostDownCounter(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	app := installAndLaunch(t, d, "com.hostdown")
	// Enroll the proxy first so the failure comes from the transport's
	// liveness check, not proxy enrollment.
	if _, err := app.Open("pre.txt", abi.OWrOnly|abi.OCreat, 0o600); err != nil {
		t.Fatal(err)
	}
	d.InjectGuestPanic("drill")

	_, err := app.Open("down.txt", abi.OWrOnly|abi.OCreat, 0o600)
	if !errors.Is(err, abi.EHOSTDOWN) {
		t.Fatalf("err = %v, want EHOSTDOWN", err)
	}
	if got := d.Layer.Stats().HostDown; got == 0 {
		t.Fatal("HostDown counter not bumped")
	}
	if d.Trace.Count(sim.EvFault) == 0 {
		t.Fatal("no fault event traced for the injected panic")
	}
}
