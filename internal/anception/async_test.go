package anception

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"anception/internal/abi"
	"anception/internal/android"
	"anception/internal/sim"
)

func bootRingDevice(t *testing.T, mutate func(*Options)) *Device {
	t.Helper()
	opts := Options{
		Mode:        ModeAnception,
		Vulns:       android.AllVulnerabilities(),
		RingDepth:   32,
		RingWorkers: 4,
	}
	if mutate != nil {
		mutate(&opts)
	}
	d, err := NewDevice(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// TestRingRedirectedIORoundTrip: redirected file I/O is byte-identical
// through the async ring, and the layer surfaces the ring's counters.
func TestRingRedirectedIORoundTrip(t *testing.T) {
	d := bootRingDevice(t, nil)
	if got := d.Layer.Transport().Name(); got != "async-ring" {
		t.Fatalf("transport = %q, want async-ring", got)
	}

	app := installAndLaunch(t, d, "com.ring.io")
	fd, err := app.Open("ring.txt", abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("payload through the async ring")
	if _, err := app.Write(fd, want); err != nil {
		t.Fatal(err)
	}
	got, err := app.Pread(fd, len(want), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("pread = %q, want %q", got, want)
	}
	// Enough further traffic to close out at least one full completion
	// batch, so the reap hypercall is observable below.
	for i := 0; i < 8; i++ {
		if _, err := app.Pwrite(fd, want, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := app.Close(fd); err != nil {
		t.Fatal(err)
	}

	st := d.Layer.Stats()
	if st.Ring.Depth != 32 {
		t.Fatalf("Ring.Depth = %d, want 32", st.Ring.Depth)
	}
	if st.Ring.Submitted == 0 || st.Ring.Completed != st.Ring.Submitted || st.Ring.Failed != 0 {
		t.Fatalf("ring accounting %+v, want submitted==completed, no failures", st.Ring)
	}
	if st.Ring.Doorbells == 0 || st.Ring.Reaps == 0 {
		t.Fatalf("ring rang no doorbell/reap: %+v", st.Ring)
	}
	if st.Redirected == 0 {
		t.Fatal("no calls counted as redirected")
	}
	if d.Trace.Count(sim.EvRing) == 0 {
		t.Fatal("no EvRing events traced")
	}
}

// TestRingConcurrentSubmissions: many goroutines drive redirected I/O
// through the ring at once; every call succeeds and the accounting
// identity submitted == completed + failed holds afterwards.
func TestRingConcurrentSubmissions(t *testing.T) {
	d := bootRingDevice(t, nil)
	const workers, opsPer = 8, 16
	apps := make([]*Proc, workers)
	for i := range apps {
		apps[i] = installAndLaunch(t, d, fmt.Sprintf("com.ring.conc%d", i))
	}

	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for i, app := range apps {
		wg.Add(1)
		go func(i int, app *Proc) {
			defer wg.Done()
			for n := 0; n < opsPer; n++ {
				name := fmt.Sprintf("c%d-%d.txt", i, n)
				fd, err := app.Open(name, abi.ORdWr|abi.OCreat, 0o600)
				if err == nil {
					_, err = app.Write(fd, []byte("concurrent"))
					if err == nil {
						_, err = app.Pread(fd, 10, 0)
					}
					if cerr := app.Close(fd); err == nil {
						err = cerr
					}
				}
				if err != nil {
					select {
					case errCh <- fmt.Errorf("worker %d op %d: %w", i, n, err):
					default:
					}
					return
				}
			}
		}(i, app)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	st := d.Layer.Stats().Ring
	if st.Submitted == 0 || st.Submitted != st.Completed+st.Failed {
		t.Fatalf("ring accounting %+v: submitted != completed+failed", st)
	}
	if st.Failed != 0 {
		t.Fatalf("ring failed %d slots with no restarts in play", st.Failed)
	}
}

// TestRingConcurrentRestartUnderLoad: goroutines hammer the ring while the
// CVM restarts repeatedly. Every failure must be a clean errno, nothing
// may deadlock, and afterwards the ring has neither lost nor
// double-completed a slot: submitted == completed + failed exactly. Run
// under -race in CI.
func TestRingConcurrentRestartUnderLoad(t *testing.T) {
	d := bootRingDevice(t, nil)
	const workers = 4
	apps := make([]*Proc, workers)
	for i := range apps {
		apps[i] = installAndLaunch(t, d, fmt.Sprintf("com.ring.worker%d", i))
	}

	stop := make(chan struct{})
	badErr := make(chan error, workers)
	var wg sync.WaitGroup
	for i, app := range apps {
		wg.Add(1)
		go func(i int, app *Proc) {
			defer wg.Done()
			report := func(err error) {
				var errno abi.Errno
				if err != nil && !errors.As(err, &errno) {
					select {
					case badErr <- fmt.Errorf("worker %d: non-errno error: %w", i, err):
					default:
					}
				}
			}
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("rw%d-%d.txt", i, n)
				fd, err := app.Open(name, abi.OWrOnly|abi.OCreat, 0o600)
				if err != nil {
					report(err)
					continue
				}
				if _, err := app.Write(fd, []byte("under load")); err != nil {
					report(err)
				}
				if _, err := app.Pread(fd, 4, 0); err != nil {
					report(err)
				}
				report(app.Close(fd))
			}
		}(i, app)
	}

	for r := 0; r < 5; r++ {
		if err := d.RestartCVM(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-badErr:
		t.Fatal(err)
	default:
	}

	// Every worker recovers on the final guest.
	for i, app := range apps {
		fd, err := app.Open("final.txt", abi.OWrOnly|abi.OCreat, 0o600)
		if err != nil {
			t.Fatalf("worker %d post-restart open: %v", i, err)
		}
		if _, err := app.Write(fd, []byte("clean")); err != nil {
			t.Fatalf("worker %d post-restart write: %v", i, err)
		}
		if err := app.Close(fd); err != nil {
			t.Fatalf("worker %d post-restart close: %v", i, err)
		}
	}
	st := d.Layer.Stats()
	if st.Restarts != 5 {
		t.Fatalf("Restarts = %d, want 5", st.Restarts)
	}
	// No lost or double completions: with all submitters quiesced, every
	// slot the ring ever accepted was completed exactly once (successfully
	// or with a clean failure).
	if st.Ring.Submitted != st.Ring.Completed+st.Ring.Failed {
		t.Fatalf("ring accounting %+v: submitted != completed+failed after quiesce", st.Ring)
	}
	if st.Ring.Rearms < 5 {
		t.Fatalf("Rearms = %d after 5 restarts, want >= 5", st.Ring.Rearms)
	}
}

// TestRingPingZeroAllocs: steady-state submission through the ring is
// allocation-free, like the synchronous channel's heartbeat
// (TestPingZeroAllocs). Guards the hot path against closure captures or
// per-call buffers sneaking in.
func TestRingPingZeroAllocs(t *testing.T) {
	d, err := NewDevice(Options{
		Mode:         ModeAnception,
		DisableTrace: true,
		RingDepth:    8,
		RingWorkers:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	for i := 0; i < 100; i++ { // warm channel frames and scheduler state
		if err := d.Layer.Ping(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := d.Layer.Ping(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ring Ping allocates %.1f objects per call, want 0", allocs)
	}
}

// TestRingDegradedFailsFast: with the breaker open, calls fail EAGAIN
// before consuming a ring slot.
func TestRingDegradedFailsFast(t *testing.T) {
	d := bootRingDevice(t, nil)
	app := installAndLaunch(t, d, "com.ring.degraded")

	before := d.Layer.Stats()
	d.SetDegraded(true)
	if _, err := app.Open("no.txt", abi.OWrOnly|abi.OCreat, 0o600); !errors.Is(err, abi.EAGAIN) {
		t.Fatalf("degraded open err = %v, want EAGAIN", err)
	}
	st := d.Layer.Stats()
	if st.FailedFast == before.FailedFast {
		t.Fatal("FailedFast did not advance")
	}
	if st.Ring.Submitted != before.Ring.Submitted {
		t.Fatalf("degraded call consumed a ring slot: %d -> %d", before.Ring.Submitted, st.Ring.Submitted)
	}

	d.SetDegraded(false)
	fd, err := app.Open("yes.txt", abi.OWrOnly|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Close(fd); err != nil {
		t.Fatal(err)
	}
}

// TestRingDeadlineTimedOut: the per-slot deadline applies on the ring path
// — a completion landing past the budget surfaces ETIMEDOUT and bumps the
// TimedOut counter, exactly like the synchronous path.
func TestRingDeadlineTimedOut(t *testing.T) {
	d := bootRingDevice(t, func(o *Options) { o.CallDeadline = time.Nanosecond })
	app := installAndLaunch(t, d, "com.ring.deadline")

	_, err := app.Open("slow.txt", abi.OWrOnly|abi.OCreat, 0o600)
	if !errors.Is(err, abi.ETIMEDOUT) {
		t.Fatalf("err = %v, want ETIMEDOUT", err)
	}
	if got := d.Layer.Stats().TimedOut; got == 0 {
		t.Fatal("TimedOut counter did not advance")
	}
	if d.Trace.Count(sim.EvTimeout) == 0 {
		t.Fatal("no timeout event traced")
	}
}
