package anception

import (
	"sync"
	"sync/atomic"
)

// This file is the policy-driven dispatch plane (DESIGN.md §15): one
// per-call decision point for transport (sync vs ring), payload
// strategy (copy vs grant), and caching (cache vs passthrough), plus
// the generation-keyed epoch/drain protocol that replaced the five
// ad-hoc supervisor restart hooks.
//
// With Options.AutoTune off the policy is inert: every decision
// reduces to exactly the static knob semantics the paper rows and the
// ablation tests pin, so existing configurations are byte-identical.
// With AutoTune on, all four fast paths boot and the decisions come
// from the online costModel; any knob the caller also set becomes a
// forced override for that decision.

// PolicyOverride forces dispatch decisions per call, regardless of
// knobs or the cost model. Tests and the pinned paper rows use it to
// reach the uncached synchronous path on a device that booted every
// fast path.
type PolicyOverride struct {
	// ForceSyncUncached routes every call over the synchronous channel
	// with no cache serving, no grants, and no binder fast path —
	// byte-identical to a plain uncached device.
	ForceSyncUncached bool
}

// PolicyStats counts dispatch decisions, surfaced via
// LayerStats.Policy.
type PolicyStats struct {
	// AutoTune reports whether the cost model is live.
	AutoTune bool
	// RingChosen / SyncChosen count transport decisions (only calls
	// where both transports were available are counted).
	RingChosen int64
	SyncChosen int64
	// GrantChosen / CopyChosen count payload-strategy decisions for
	// grant-shaped bulk calls.
	GrantChosen int64
	CopyChosen  int64
	// CacheServed / CacheSkipped count cache-vs-passthrough decisions.
	CacheServed  int64
	CacheSkipped int64
	// Explorations counts decisions where the model deliberately took
	// the currently-losing arm to keep its estimate fresh.
	Explorations int64
	// GrantCrossoverBytes is the model's current copy-vs-grant cutover
	// (0 when auto-tuning is off).
	GrantCrossoverBytes int
	// SizeHistogram is the observed bulk payload-size histogram in
	// log2 buckets from 64 B (zero-valued when auto-tuning is off).
	SizeHistogram [numSizeBuckets]int64
	// ClassCostSimNs is the model's per-class expected service cost in
	// sim nanoseconds (meta, bulk, socket — see OpClassNames), the
	// better transport arm's EWMA. Zero-valued when auto-tuning is off
	// or the class is unobserved. The fleet placement scheduler reads
	// these as load signals.
	ClassCostSimNs [numOpClasses]float64
}

// OpClassNames names the per-class slots of PolicyStats.ClassCostSimNs,
// in index order.
func OpClassNames() []string { return []string{"meta", "bulk", "sock"} }

// EpochStats describes the epoch/drain protocol state, surfaced via
// LayerStats.Epoch.
type EpochStats struct {
	// Advances counts AdvanceEpoch calls since boot.
	Advances int
	// Generation is the boot generation of the last advance.
	Generation int
	// Order is the pinned participant drain order.
	Order []string
}

// dispatchPolicy is the per-layer decision state. Counters are atomic:
// decisions happen on the lock-free hot path.
type dispatchPolicy struct {
	// autoTune mirrors Options.AutoTune; model is non-nil iff set.
	autoTune bool
	model    *costModel
	// ringForced / cacheForced record knobs the caller set alongside
	// AutoTune: an explicit RingDepth pins the transport to the ring, an
	// explicit RedirCache pins the cache to always serve.
	ringForced  bool
	cacheForced bool
	override    atomic.Pointer[PolicyOverride]

	ringChosen   atomic.Int64
	syncChosen   atomic.Int64
	grantChosen  atomic.Int64
	copyChosen   atomic.Int64
	cacheServed  atomic.Int64
	cacheSkipped atomic.Int64
	explorations atomic.Int64
}

func newDispatchPolicy(autoTune, ringForced, cacheForced bool) *dispatchPolicy {
	p := &dispatchPolicy{autoTune: autoTune, ringForced: ringForced, cacheForced: cacheForced}
	if autoTune {
		p.model = newCostModel()
	}
	return p
}

// forceSync reports whether an override pins this call to the
// uncached synchronous path.
func (p *dispatchPolicy) forceSync() bool {
	ov := p.override.Load()
	return ov != nil && ov.ForceSyncUncached
}

// useRing decides the transport arm for a call when both transports
// are mounted (AutoTune boots the ring plus a synchronous fallback
// channel). Forced-sync overrides win; otherwise the cost model picks,
// biased to the ring whenever other guest calls are in flight.
func (p *dispatchPolicy) useRing(class opClass, inflight int64) bool {
	if p.forceSync() {
		p.syncChosen.Add(1)
		return false
	}
	if p.ringForced || p.model == nil {
		// No model (static ring configuration), or the RingDepth knob was
		// set alongside AutoTune: the knob forced the ring.
		p.ringChosen.Add(1)
		return true
	}
	// inflight counts this call too: >1 means genuine overlap.
	ring, explored := p.model.preferRing(class, inflight-1)
	if explored {
		p.explorations.Add(1)
	}
	if ring {
		p.ringChosen.Add(1)
	} else {
		p.syncChosen.Add(1)
	}
	return ring
}

// useGrant decides the payload arm for a grant-shaped bulk call. A
// non-zero GrantThreshold knob keeps its exact static semantics; with
// the knob unset under AutoTune the model's learned crossover decides.
func (p *dispatchPolicy) useGrant(size, knob int) bool {
	if p.forceSync() {
		return false
	}
	var grant bool
	switch {
	case knob > 0:
		grant = size >= knob
	case p.model == nil:
		return false
	default:
		var explored bool
		grant, explored = p.model.shouldGrant(size)
		if explored {
			p.explorations.Add(1)
		}
	}
	if grant {
		p.grantChosen.Add(1)
	} else {
		p.copyChosen.Add(1)
	}
	return grant
}

// serveCache decides cache-vs-passthrough for a descriptor call.
// Static configurations always serve (the RedirCache knob asked for
// it); under AutoTune the model gates on the observed hit rate, and a
// forced-sync override always passes through.
func (p *dispatchPolicy) serveCache(hits, lookups int64) bool {
	if p.forceSync() {
		p.cacheSkipped.Add(1)
		return false
	}
	if p.cacheForced || p.model == nil {
		p.cacheServed.Add(1)
		return true
	}
	if p.model.cacheWorthIt(hits, lookups) {
		p.cacheServed.Add(1)
		return true
	}
	p.cacheSkipped.Add(1)
	return false
}

// snapshot copies the decision counters for LayerStats.
func (p *dispatchPolicy) snapshot() PolicyStats {
	s := PolicyStats{
		AutoTune:     p.autoTune,
		RingChosen:   p.ringChosen.Load(),
		SyncChosen:   p.syncChosen.Load(),
		GrantChosen:  p.grantChosen.Load(),
		CopyChosen:   p.copyChosen.Load(),
		CacheServed:  p.cacheServed.Load(),
		CacheSkipped: p.cacheSkipped.Load(),
		Explorations: p.explorations.Load(),
	}
	if p.model != nil {
		s.GrantCrossoverBytes = p.model.crossoverBytes()
		s.SizeHistogram = p.model.sizeHistogram()
		s.ClassCostSimNs = p.model.classCosts()
	}
	return s
}

// epochParticipant is one fast path enrolled in the epoch/drain
// protocol: a name (for the pinned order) and the generation-keyed
// advance that drains/fails/reconciles its warm state.
type epochParticipant struct {
	name    string
	advance func(gen int)
}

// layerEpoch tracks epoch advances. The participant list is fixed at
// boot; only the counters need the lock.
type layerEpoch struct {
	participants []epochParticipant

	mu       sync.Mutex
	advances int
	gen      int
}

// AdvanceEpoch rolls every fast path's warm state to the new boot
// generation in one pinned pass. This is the single drain entry point
// that replaced the five per-path supervisor restart hooks; the order
// is a contract, asserted by tests:
//
//  1. grants — first, so every stale page-flipping ref fails fast
//     before any other drain step can complete work that would resolve
//     a grant against host pages the app may already be reusing.
//  2. ring — second: with grants gone, re-arming the ring makes
//     in-flight slots fail EHOSTDOWN cleanly; re-arming before the
//     grant sweep would let a slot complete against a grant that is
//     about to be revoked underneath it.
//  3. sockets — third: socket ops ride ring slots like file I/O, so
//     the network fast path rolls only after the ring is keyed to the
//     new generation; rolling it also re-keys the fresh guest stack so
//     surviving sockets re-run the current ConnectPolicy, which must
//     happen before any later participant could forward a socket op.
//  4. binder — fourth: binder sessions pipeline transactions through
//     ring slots, so sessions are dropped only after the ring is keyed
//     to the new generation — a drained session can then never re-pin
//     its handle against the old boot.
//  5. cache — last: the cache's fetch and flush paths forward through
//     the ring, grant, and binder paths above; invalidating after all
//     of them guarantees nothing can re-populate the cache from a
//     pre-drain code path, so no stale page survives the sweep.
//
// The snapshot-restore path deliberately does NOT advance the epoch:
// RestoreGuest reconciles warm state generation-aware (entries
// provably unchanged since the checkpoint survive), and these
// wholesale sweeps would destroy exactly the state the restore path
// exists to preserve.
func (l *Layer) AdvanceEpoch(gen int) {
	for _, p := range l.epoch.participants {
		p.advance(gen)
	}
	l.epoch.mu.Lock()
	l.epoch.advances++
	l.epoch.gen = gen
	l.epoch.mu.Unlock()
}

// SetPolicyOverride installs (or, with nil, clears) a per-call
// dispatch override. Takes effect on the next call; callers switching
// a warm device to ForceSyncUncached should FlushRedirCache first if
// they need buffered writes on the guest.
func (l *Layer) SetPolicyOverride(ov *PolicyOverride) {
	l.policy.override.Store(ov)
}

// epochStats snapshots the epoch protocol state.
func (l *Layer) epochStats() EpochStats {
	order := make([]string, len(l.epoch.participants))
	for i, p := range l.epoch.participants {
		order[i] = p.name
	}
	l.epoch.mu.Lock()
	defer l.epoch.mu.Unlock()
	return EpochStats{Advances: l.epoch.advances, Generation: l.epoch.gen, Order: order}
}
