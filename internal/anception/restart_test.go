package anception

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"anception/internal/abi"
	"anception/internal/android"
	"anception/internal/kernel"
	"anception/internal/netstack"
)

// TestCVMRestartAfterCrash: the crash-only recovery story. A container
// crash (here: the failed CVE-2009-2692 null dereference) kills the CVM;
// the host restarts it, apps keep running, and redirected I/O resumes —
// with the container's persistent storage intact.
func TestCVMRestartAfterCrash(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	app := installAndLaunch(t, d, "com.survivor")

	// Durable state written before the crash.
	fd, err := app.Open("persisted.txt", abi.OWrOnly|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Write(fd, []byte("written before the crash")); err != nil {
		t.Fatal(err)
	}
	if err := app.Close(fd); err != nil {
		t.Fatal(err)
	}

	// A malicious app crashes the container via the null-sendpage bug.
	mal := installAndLaunch(t, d, "com.crasher")
	_ = mal.MapFixed(0, 1, kernel.ProtRead|kernel.ProtWrite|kernel.ProtExec)
	sock, err := mal.Socket(netstack.AFBluetooth, netstack.SockDgram, 0)
	if err != nil {
		t.Fatal(err)
	}
	vfd, err := mal.Open("bait.txt", abi.ORdWr|abi.OCreat, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mal.Sendfile(sock, vfd, abi.PageSize); err == nil {
		t.Fatal("sendfile should have failed with the CVM crash")
	}
	if d.Guest.Panicked() == "" {
		t.Fatal("container did not crash")
	}
	// Redirected I/O is down.
	if _, err := app.Open("while-down.txt", abi.OWrOnly|abi.OCreat, 0o600); err == nil {
		t.Fatal("redirected open succeeded on a dead container")
	}
	// The host app itself is fine.
	if app.Task.CurrentState() != kernel.TaskRunning {
		t.Fatal("host app died with the container")
	}

	// Restart the container.
	if err := d.RestartCVM(); err != nil {
		t.Fatal(err)
	}
	if d.Guest.Panicked() != "" {
		t.Fatal("fresh guest kernel reports a panic")
	}
	if d.GuestServices.Service("vold") == nil {
		t.Fatal("services did not come back")
	}

	// The app resumes: a fresh proxy enrolls on its next call.
	fd2, err := app.Open("after.txt", abi.OWrOnly|abi.OCreat, 0o600)
	if err != nil {
		t.Fatalf("redirected open after restart: %v", err)
	}
	if _, err := app.Write(fd2, []byte("back in business")); err != nil {
		t.Fatal(err)
	}
	if d.Proxies.ProxyFor(app.Task.PID) == nil {
		t.Fatal("no fresh proxy after restart")
	}

	// Persistent container storage survived the reboot.
	data, err := d.Guest.FS().ReadFile(abi.Cred{UID: abi.UIDRoot}, app.App.Info.DataDir+"/persisted.txt")
	if err != nil || string(data) != "written before the crash" {
		t.Fatalf("persisted data = %q, %v", data, err)
	}

	// Stale pre-crash descriptors surface as errors, not corruption.
	if _, err := app.Write(fd, []byte("stale")); err == nil {
		t.Fatal("stale descriptor silently worked after restart")
	}
}

// TestCVMRestartWipesCompromise: a rooted container is fully cleaned by a
// restart — the exploit state does not survive the region wipe.
func TestCVMRestartWipesCompromise(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	mal := installAndLaunch(t, d, "com.rooter")

	// Root the container via the delegated diag driver.
	fd, err := mal.Open("/dev/diag", abi.ORdWr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mal.Ioctl(fd, android.IoctlExploitTrigger, nil); err != nil {
		t.Fatal(err)
	}
	if d.Guest.Compromised() == nil {
		t.Fatal("container not compromised")
	}

	if err := d.RestartCVM(); err != nil {
		t.Fatal(err)
	}
	if d.Guest.Compromised() != nil {
		t.Fatal("compromise survived the restart")
	}
	if d.Guest.Rooted() {
		t.Fatal("root state survived the restart")
	}
	// The platform is fully functional again.
	p2 := installAndLaunch(t, d, "com.fresh")
	fd2, err := p2.Open("f", abi.OWrOnly|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Write(fd2, []byte("clean")); err != nil {
		t.Fatal(err)
	}
}

// TestRestartRejectsNonAnception: native platforms have no container.
func TestRestartRejectsNonAnception(t *testing.T) {
	d := bootDevice(t, ModeNative)
	if err := d.RestartCVM(); !errors.Is(err, abi.EINVAL) {
		t.Fatalf("err = %v, want EINVAL", err)
	}
}

// TestRestartPreservesMemoryIsolation: the relaunched container's frames
// remain confined to the original region.
func TestRestartPreservesMemoryIsolation(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	hi := installAndLaunch(t, d, "com.bank")
	addr, err := hi.PlantSecret([]byte("still-secret"))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RestartCVM(); err != nil {
		t.Fatal(err)
	}
	// Guest services landed inside the region.
	for _, task := range d.Guest.Tasks() {
		for _, v := range task.AS.VMAs() {
			for _, f := range v.Frames {
				if !d.CVM.Region().Contains(f) {
					t.Fatalf("guest frame %d outside region after restart", f)
				}
			}
		}
	}
	// And the host app's secret is still unreadable from the guest side.
	if _, err := hi.Task.AS.ReadBytes(d.Guest.Region(), addr, 12); !errors.Is(err, abi.EPERM) {
		t.Fatalf("guest-region read of host memory after restart: %v", err)
	}
}

// TestConcurrentRestartUnderLoad: apps hammer redirected I/O from several
// goroutines while the container is restarted repeatedly. Every failure an
// app observes must be a clean errno — never a raw data race, deadlock, or
// non-errno error — and once the dust settles every app can still do
// redirected I/O. Run under -race in CI.
func TestConcurrentRestartUnderLoad(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	const workers = 4
	apps := make([]*Proc, workers)
	for i := range apps {
		apps[i] = installAndLaunch(t, d, fmt.Sprintf("com.worker%d", i))
	}

	stop := make(chan struct{})
	badErr := make(chan error, workers)
	var wg sync.WaitGroup
	for i, app := range apps {
		wg.Add(1)
		go func(i int, app *Proc) {
			defer wg.Done()
			report := func(err error) {
				var errno abi.Errno
				if err != nil && !errors.As(err, &errno) {
					select {
					case badErr <- fmt.Errorf("worker %d: non-errno error: %w", i, err):
					default:
					}
				}
			}
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("w%d-%d.txt", i, n)
				fd, err := app.Open(name, abi.OWrOnly|abi.OCreat, 0o600)
				if err != nil {
					report(err)
					continue
				}
				if _, err := app.Write(fd, []byte("under load")); err != nil {
					report(err)
				}
				if _, err := app.Pread(fd, 4, 0); err != nil {
					report(err)
				}
				report(app.Close(fd))
			}
		}(i, app)
	}

	for r := 0; r < 5; r++ {
		if err := d.RestartCVM(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-badErr:
		t.Fatal(err)
	default:
	}

	// Every worker recovers: a fresh open/write/close round-trip works and
	// its proxy re-enrolls against the final guest.
	for i, app := range apps {
		fd, err := app.Open("final.txt", abi.OWrOnly|abi.OCreat, 0o600)
		if err != nil {
			t.Fatalf("worker %d post-restart open: %v", i, err)
		}
		if _, err := app.Write(fd, []byte("clean")); err != nil {
			t.Fatalf("worker %d post-restart write: %v", i, err)
		}
		if err := app.Close(fd); err != nil {
			t.Fatalf("worker %d post-restart close: %v", i, err)
		}
		if d.Proxies.ProxyFor(app.Task.PID) == nil {
			t.Fatalf("worker %d has no proxy on the final guest", i)
		}
	}
	if got := d.Layer.Stats().Restarts; got != 5 {
		t.Fatalf("Restarts = %d, want 5", got)
	}
}
