package anception

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"anception/internal/abi"
	"anception/internal/android"
)

// bootBinderDevice boots an Anception device with the given binder
// fast-path options and one launched app holding an open /dev/binder fd.
func bootBinderDevice(t *testing.T, opts Options) (*Device, *Proc, int) {
	t.Helper()
	opts.Mode = ModeAnception
	d, err := NewDevice(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	p := installAndLaunch(t, d, "com.binder.test")
	fd, err := p.OpenBinder()
	if err != nil {
		t.Fatal(err)
	}
	return d, p, fd
}

// binderIdentity asserts the fast path's accounting identity.
func binderIdentity(t *testing.T, d *Device) {
	t.Helper()
	st := d.BinderStats()
	if st.Submitted != st.Completed+st.Failed {
		t.Fatalf("binder accounting broken: %+v", st)
	}
}

// TestBinderSessionAmortizesPenalty: the first transaction pays the cold
// CVM penalty plus the one-time session setup; established sessions pay
// BinderSessionPerTxn instead of the 18.7 ms penalty — at least 5x less
// fixed overhead than the synchronous bridge.
func TestBinderSessionAmortizesPenalty(t *testing.T) {
	d, p, fd := bootBinderDevice(t, Options{BinderSessions: true})
	payload := make([]byte, 128)
	call := func() time.Duration {
		return measureOnce(d, func() {
			if _, err := p.BinderCall(fd, "location", android.CodeGetLocation, payload); err != nil {
				t.Fatal(err)
			}
		})
	}
	cold := call()
	warm := call()

	m := d.Model
	encoded := time.Duration(2 + len("location") + 4 + len(payload)) // 142 B cross the boundary
	wantCold := m.SyscallEntry + m.BinderTransaction + m.BinderCVMPenalty + m.BinderSessionSetup + encoded*m.BinderCVMPerByte
	wantWarm := m.SyscallEntry + m.BinderTransaction + m.BinderSessionPerTxn + encoded*m.BinderCVMPerByte
	within(t, "cold session call", cold, wantCold, 0.01)
	within(t, "warm session call", warm, wantWarm, 0.01)

	// The acceptance floor, at model level: warm overhead over the native
	// transaction must be at least 5x below the sync bridge's.
	syncOver := m.BinderCVMPenalty + encoded*m.BinderCVMPerByte
	warmOver := m.BinderSessionPerTxn + encoded*m.BinderCVMPerByte
	if syncOver < 5*warmOver {
		t.Fatalf("session overhead %v not 5x below sync %v", warmOver, syncOver)
	}

	st := d.BinderStats()
	if st.SessionsOpened != 1 || st.SessionTxns != 2 {
		t.Fatalf("stats = %+v, want 1 session, 2 txns", st)
	}
	if st.Submitted != 2 || st.Completed != 2 || st.Failed != 0 {
		t.Fatalf("accounting = %+v, want 2/2/0", st)
	}
	if got := d.Layer.Stats().Binder; got != st {
		t.Fatalf("LayerStats.Binder = %+v, want %+v", got, st)
	}
}

// TestBinderSessionSharedAcrossApps: sessions pin a (service -> guest
// handle) resolution, so a second app's transactions reuse the session the
// first app opened instead of paying setup again.
func TestBinderSessionSharedAcrossApps(t *testing.T) {
	d, p, fd := bootBinderDevice(t, Options{BinderSessions: true})
	if _, err := p.BinderCall(fd, "location", android.CodeGetLocation, nil); err != nil {
		t.Fatal(err)
	}
	p2 := installAndLaunch(t, d, "com.binder.second")
	fd2, err := p2.OpenBinder()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.BinderCall(fd2, "location", android.CodeGetLocation, nil); err != nil {
		t.Fatal(err)
	}
	if st := d.BinderStats(); st.SessionsOpened != 1 || st.SessionTxns != 2 {
		t.Fatalf("stats = %+v, want the second app on the first app's session", st)
	}
}

// TestBinderUIStaysOnHost: UI transactions never enter the fast path —
// they pass through to the host service even with every knob on.
func TestBinderUIStaysOnHost(t *testing.T) {
	d, p, fd := bootBinderDevice(t, Options{BinderSessions: true, BinderReplyCache: true})
	if _, err := p.BinderCall(fd, "window", android.CodeDraw, []byte("frame")); err != nil {
		t.Fatal(err)
	}
	if st := d.BinderStats(); st.Submitted != 0 || st.SessionsOpened != 0 {
		t.Fatalf("UI transaction leaked into the fast path: %+v", st)
	}
}

// TestBinderReplyCacheHit: a read-only reply is served host-side on
// repeat, a different payload misses, and a mutating transaction to the
// same service invalidates what was cached.
func TestBinderReplyCacheHit(t *testing.T) {
	d, p, fd := bootBinderDevice(t, Options{BinderReplyCache: true})
	payload := []byte("where am i")

	first, err := p.BinderCall(fd, "location", android.CodeGetLocation, payload)
	if err != nil {
		t.Fatal(err)
	}
	var second []byte
	hitCost := measureOnce(d, func() {
		second, err = p.BinderCall(fd, "location", android.CodeGetLocation, payload)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("cached reply %q != first reply %q", second, first)
	}
	if hitCost >= time.Millisecond {
		t.Fatalf("reply-cache hit cost %v, want host-side (sub-millisecond)", hitCost)
	}
	st := d.BinderStats()
	if st.ReplyHits != 1 || st.ReplyStores != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 store", st)
	}

	// A different payload is a different key: miss, then store.
	if _, err := p.BinderCall(fd, "location", android.CodeGetLocation, []byte("elsewhere")); err != nil {
		t.Fatal(err)
	}
	if st := d.BinderStats(); st.ReplyHits != 1 || st.ReplyStores != 2 {
		t.Fatalf("stats = %+v, want miss+store on a new payload", st)
	}

	// An undeclared (mutating) code drops every cached reply for the
	// service; the next read-only call misses and re-populates.
	if _, err := p.BinderCall(fd, "location", android.CodeDraw, nil); err != nil {
		t.Fatal(err)
	}
	if st := d.BinderStats(); st.Invalidations != 2 {
		t.Fatalf("Invalidations = %d, want both cached replies dropped", st.Invalidations)
	}
	if _, err := p.BinderCall(fd, "location", android.CodeGetLocation, payload); err != nil {
		t.Fatal(err)
	}
	if st := d.BinderStats(); st.ReplyHits != 1 || st.ReplyStores != 3 {
		t.Fatalf("stats = %+v, want a miss after invalidation", st)
	}
	binderIdentity(t, d)
}

// TestBinderReplyCacheDegradedBypass: with the circuit breaker open the
// reply cache neither serves nor stores; with sessions on, degraded
// session traffic fails fast EAGAIN like the rest of the redirection
// machinery.
func TestBinderReplyCacheDegradedBypass(t *testing.T) {
	d, p, fd := bootBinderDevice(t, Options{BinderReplyCache: true})
	payload := []byte("fix")
	if _, err := p.BinderCall(fd, "location", android.CodeGetLocation, payload); err != nil {
		t.Fatal(err)
	}
	d.SetDegraded(true)
	// The uncached synchronous bridge predates the breaker and still
	// serves — but the cache must not: no hit, no store.
	for i := 0; i < 2; i++ {
		if _, err := p.BinderCall(fd, "location", android.CodeGetLocation, payload); err != nil {
			t.Fatal(err)
		}
	}
	if st := d.BinderStats(); st.ReplyHits != 0 || st.ReplyStores != 1 {
		t.Fatalf("degraded stats = %+v, want no cache traffic", st)
	}
	d.SetDegraded(false)
	if _, err := p.BinderCall(fd, "location", android.CodeGetLocation, payload); err != nil {
		t.Fatal(err)
	}
	if st := d.BinderStats(); st.ReplyHits != 1 {
		t.Fatalf("stats = %+v, want caching to resume after recovery", st)
	}

	// Session traffic respects the breaker.
	ds, ps, fds := bootBinderDevice(t, Options{BinderSessions: true})
	ds.SetDegraded(true)
	if _, err := ps.BinderCall(fds, "location", android.CodeGetLocation, nil); !errors.Is(err, abi.EAGAIN) {
		t.Fatalf("degraded session call: %v, want EAGAIN", err)
	}
	binderIdentity(t, ds)
}

// TestBinderRestartDrainsSessions: a CVM restart rolls the boot
// generation — pinned handles and cached replies die with the container,
// and the next transaction re-enrolls cleanly.
func TestBinderRestartDrainsSessions(t *testing.T) {
	d, p, fd := bootBinderDevice(t, Options{BinderSessions: true, BinderReplyCache: true})
	payload := []byte("pre-restart")
	for i := 0; i < 2; i++ {
		if _, err := p.BinderCall(fd, "location", android.CodeGetLocation, payload); err != nil {
			t.Fatal(err)
		}
	}
	if st := d.BinderStats(); st.SessionsOpened != 1 || st.ReplyStores != 1 || st.ReplyHits != 1 {
		t.Fatalf("pre-restart stats = %+v", st)
	}

	if err := d.RestartCVM(); err != nil {
		t.Fatal(err)
	}
	if st := d.BinderStats(); st.DrainedSessions != 1 {
		t.Fatalf("DrainedSessions = %d, want 1", st.DrainedSessions)
	}

	// Same payload, fresh container: must NOT be served from the dead
	// generation's cache, and must open a fresh session.
	if _, err := p.BinderCall(fd, "location", android.CodeGetLocation, payload); err != nil {
		t.Fatal(err)
	}
	st := d.BinderStats()
	if st.ReplyHits != 1 {
		t.Fatalf("stale reply served across restart: %+v", st)
	}
	if st.SessionsOpened != 2 {
		t.Fatalf("SessionsOpened = %d, want a fresh session", st.SessionsOpened)
	}
	binderIdentity(t, d)
}

// TestBinderPipelinedDeadline: on the ring, a transaction whose completion
// lands past CallDeadline surfaces ETIMEDOUT and counts as failed.
func TestBinderPipelinedDeadline(t *testing.T) {
	d, p, fd := bootBinderDevice(t, Options{
		BinderSessions: true,
		RingDepth:      8,
		RingWorkers:    1,
		CallDeadline:   time.Millisecond, // far below the ~12 ms guest-side handling
	})
	_, err := p.BinderCall(fd, "location", android.CodeGetLocation, nil)
	if !errors.Is(err, abi.ETIMEDOUT) {
		t.Fatalf("err = %v, want ETIMEDOUT", err)
	}
	st := d.BinderStats()
	if st.Failed != 1 || st.Pipelined != 1 {
		t.Fatalf("stats = %+v, want 1 pipelined failure", st)
	}
	binderIdentity(t, d)
}

// TestBinderOnewayTransaction: a oneway (async) transaction returns
// without a reply, dispatches in the guest, and keeps the accounting
// identity on both the plain session path and the ring.
func TestBinderOnewayTransaction(t *testing.T) {
	d, p, fd := bootBinderDevice(t, Options{BinderSessions: true})
	if err := p.BinderCallAsync(fd, "location", android.CodeGetLocation, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	if st := d.BinderStats(); st.Oneway != 1 {
		t.Fatalf("stats = %+v, want 1 oneway", st)
	}
	if got := d.Guest.Binder().OnewayCount(); got != 1 {
		t.Fatalf("guest OnewayCount = %d, want 1", got)
	}
	binderIdentity(t, d)

	// On the ring the slot completes behind the caller's back; the
	// detached waiter must still settle the identity.
	dr, pr, fdr := bootBinderDevice(t, Options{
		BinderSessions: true, RingDepth: 8, RingWorkers: 1, CallDeadline: time.Hour,
	})
	if err := pr.BinderCallAsync(fdr, "location", android.CodeGetLocation, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := dr.BinderStats()
		if st.Submitted == st.Completed+st.Failed && st.Oneway == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("oneway ring slot never settled: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBinderRestartUnderLoad: workers hammer sessioned+pipelined binder
// transactions while the container restarts repeatedly. Every observed
// failure must be a clean errno, the accounting identity must hold once
// the dust settles, and fresh traffic must flow. Run under -race in CI.
func TestBinderRestartUnderLoad(t *testing.T) {
	d, err := NewDevice(Options{
		Mode:           ModeAnception,
		BinderSessions: true,
		RingDepth:      16,
		RingWorkers:    2,
		CallDeadline:   time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const workers = 4
	type binderApp struct {
		proc *Proc
		fd   int
	}
	apps := make([]binderApp, workers)
	for i := range apps {
		proc := installAndLaunch(t, d, fmt.Sprintf("com.binder.load%d", i))
		fd, err := proc.OpenBinder()
		if err != nil {
			t.Fatal(err)
		}
		apps[i] = binderApp{proc, fd}
	}

	stop := make(chan struct{})
	badErr := make(chan error, workers)
	var wg sync.WaitGroup
	for i, app := range apps {
		wg.Add(1)
		go func(i int, app binderApp) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				_, err := app.proc.BinderCall(app.fd, "location", android.CodeGetLocation, []byte("under load"))
				var errno abi.Errno
				if err != nil && !errors.As(err, &errno) {
					select {
					case badErr <- fmt.Errorf("worker %d: non-errno error: %w", i, err):
					default:
					}
					return
				}
			}
		}(i, app)
	}

	// Restart only after the workers have re-enrolled a session on the
	// current container, so every restart kills live fast-path state.
	for r := 0; r < 5; r++ {
		deadline := time.Now().Add(10 * time.Second)
		for d.BinderStats().SessionsOpened <= r {
			if time.Now().After(deadline) {
				t.Fatalf("workers never opened session %d: %+v", r+1, d.BinderStats())
			}
			time.Sleep(time.Millisecond)
		}
		if err := d.RestartCVM(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-badErr:
		t.Fatal(err)
	default:
	}

	binderIdentity(t, d)
	// Every app recovers on the final guest.
	for i, app := range apps {
		if _, err := app.proc.BinderCall(app.fd, "location", android.CodeGetLocation, []byte("post")); err != nil {
			t.Fatalf("worker %d post-restart call: %v", i, err)
		}
	}
	binderIdentity(t, d)
	if st := d.BinderStats(); st.SessionsOpened < 5 {
		t.Fatalf("restarts left no trace in the fast path: %+v", st)
	}
}
