// Package anception assembles the three platforms the paper evaluates —
// native Android, Anception-based Android, and classical whole-stack
// virtualization (Cells/AirBag style) — and implements the Anception
// layer itself: the ASIM-driven interceptor that decomposes an app's trust
// between the host kernel and the container VM.
//
// This package is the library's primary public surface: construct a Device
// with NewDevice, install apps, launch them, and drive them through the
// Proc system-call API.
package anception

import (
	"fmt"
	"time"

	"anception/internal/abi"
	"anception/internal/android"
	"anception/internal/binder"
	"anception/internal/hypervisor"
	"anception/internal/kernel"
	"anception/internal/marshal"
	"anception/internal/netstack"
	"anception/internal/proxy"
	"anception/internal/sim"
	"anception/internal/vfs"
)

// Mode selects the platform architecture.
type Mode int

// Platform modes.
const (
	// ModeNative is stock Android: one kernel, all services privileged.
	ModeNative Mode = iota + 1
	// ModeAnception is the paper's design: trusted host kernel with the
	// UI stack plus a deprivileged headless container servicing
	// redirected calls.
	ModeAnception
	// ModeClassicalVM is the baseline the paper compares against in
	// Section V-B: the whole Android stack, apps included, inside one
	// untrusted guest.
	ModeClassicalVM
)

// autoTuneRingDepth is the async ring depth the adaptive data plane
// mounts when Options.AutoTune is set without an explicit RingDepth.
const autoTuneRingDepth = 64

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeNative:
		return "native"
	case ModeAnception:
		return "anception"
	case ModeClassicalVM:
		return "classical-vm"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Options configures a Device. The zero value plus a Mode boots the
// paper's configuration: 1 GB device, 64 MB CVM, 4096-byte chunking,
// remapped-page transport, optimized proxy dispatch, headless container.
type Options struct {
	Mode Mode

	// MemoryBytes is total device memory (default 1 GB).
	MemoryBytes int64
	// CVMMemoryBytes is the container's assignment (default 64 MB).
	CVMMemoryBytes int64
	// GuestKernelReserveBytes approximates the guest kernel's own
	// footprint (default sized to match the paper's 49,228 KB available).
	GuestKernelReserveBytes int64
	// ChannelPages sizes the shared data channel (default 16).
	ChannelPages int

	// ChunkSize overrides the data-channel transfer unit (ablation A2).
	ChunkSize int
	// SocketTransport selects the discarded socket-style channel (A5).
	SocketTransport bool
	// NaiveDispatch disables the in-kernel proxy wait (A3).
	NaiveDispatch bool
	// KeepFSOnHost services filesystem calls on the host (A1), trading
	// deprivileged code for I/O latency.
	KeepFSOnHost bool
	// FullCVMStack boots a non-headless container (A4).
	FullCVMStack bool
	// CallDeadline bounds each redirected call in sim time (default
	// anception.DefaultCallDeadline).
	CallDeadline time.Duration

	// RedirCache enables the host-side redirection cache (DESIGN.md §9):
	// per-descriptor page caching with read-ahead, write coalescing, and
	// a path-attribute cache for idempotent calls. Off by default — the
	// paper's Table I numbers are measured without it.
	RedirCache bool
	// ReadAheadPages is the pages fetched per read miss in one chunked
	// round-trip (default anception.DefaultReadAheadPages).
	ReadAheadPages int
	// CacheBudgetBytes bounds clean cached page data, LRU-evicted
	// (default anception.DefaultCacheBudgetBytes).
	CacheBudgetBytes int64
	// CacheFlushDelay is the sim-time write-back deadline for buffered
	// writes (default anception.DefaultCacheFlushDelay).
	CacheFlushDelay time.Duration

	// RingDepth > 0 replaces the synchronous page channel with the
	// asynchronous redirection ring: that many SQ/CQ slots in the
	// remapped channel pages, coalesced doorbell interrupts, and a guest
	// proxy worker pool draining submissions concurrently. Off by
	// default — the paper's Table I single-call rows are measured on the
	// synchronous channel.
	RingDepth int
	// RingWorkers is the proxy worker pool size when the ring is active
	// (default proxy.DefaultPoolWorkers). Entries sharing a descriptor
	// stay FIFO; distinct descriptors execute concurrently.
	RingWorkers int
	// RingReapBatch overrides the ring's CQ reap threshold (default
	// marshal.RingReapBatch). Deep pipelined workloads raise it to
	// amortize completion interrupts across more slots.
	RingReapBatch int

	// GrantThreshold > 0 enables the zero-copy grant path (DESIGN.md
	// §11): bulk I/O calls moving at least this many bytes pin the app
	// buffer's pages into a hypervisor grant table mapped into guest
	// space and ship a fixed-size scatter-gather descriptor over the
	// channel instead of chunked copies. Smaller calls keep the copy
	// path, whose fixed costs undercut a grant map + TLB shootdown. Off
	// by default — the paper's Table I rows are measured without it.
	GrantThreshold int

	// NetBatch caps how many accepted connections or readiness events one
	// batched accept4/epoll_wait ring completion may carry (default
	// anception.DefaultNetBatch). Callers asking for more are clamped;
	// callers asking for 0 get the full cap.
	NetBatch int
	// SockRcvBudget overrides the per-socket receive-queue byte budget
	// (default netstack.DefaultRcvBudget). A full stream queue pushes
	// EAGAIN back at the sender; a full datagram queue drops silently and
	// counts the drop.
	SockRcvBudget int

	// BinderSessions enables persistent binder sessions to CVM-resident
	// services (DESIGN.md §12): the first transaction to a service pays a
	// one-time BinderSessionSetup (proxy enrollment + pinned guest
	// handle) and later ones skip the guest lookup and cold CVM wakeup,
	// paying BinderSessionPerTxn instead of the full 18.7 ms penalty.
	// With RingDepth > 0, session transactions ride the async ring. Off
	// by default — the paper's 31.0/31.3 ms Table I rows are measured on
	// the uncached synchronous bridge.
	BinderSessions bool
	// BinderReplyCache caches replies of transaction codes declared
	// read-only at Register, keyed on (service, code, payload hash);
	// invalidated by any mutating transaction to the same service, by CVM
	// restart, and bypassed in degraded mode. Off by default.
	BinderReplyCache bool

	// FusionEnable boots the syscall-fusion layer (DESIGN.md §17):
	// Proc.Chain packs dependent call chains into linked ring
	// submissions executed guest-side in one round trip, and a per-task
	// pattern detector transparently fuses recognized hot chain shapes
	// (open→fstat→read, send→recv), falling back to per-call dispatch
	// on misprediction. Requires an async ring (RingDepth > 0 or
	// AutoTune); without one, chains execute per-call. AutoTune implies
	// FusionEnable. Off by default.
	FusionEnable bool
	// FusionMaxLinks bounds the links one fused submission may carry
	// (default anception.DefaultFusionMaxLinks, hard-capped at
	// marshal.MaxChainLinks). Longer chains fall back to per-call
	// dispatch.
	FusionMaxLinks int

	// AutoTune enables the adaptive data plane (DESIGN.md §15): every
	// fast path boots — the async ring (plus a synchronous fallback
	// channel), the redirection cache, the zero-copy grant path, binder
	// sessions and the reply cache — and one cost-model-driven policy
	// decides per call between sync and ring transport, copy and grant
	// payload movement, and cache and passthrough, seeded with the
	// measured crossovers from BENCH_redirection.json and tuned online
	// from observed latencies, payload sizes, and hit rates. Knobs set
	// alongside it become forced overrides: RingDepth sizes the ring and
	// pins the transport to it, GrantThreshold pins the exact cutover,
	// RedirCache pins the cache to always serve. SocketTransport is
	// ignored under AutoTune. Layer.SetPolicyOverride can still force
	// individual calls onto the uncached synchronous path (the pinned
	// paper rows). Off by default.
	AutoTune bool

	// SnapshotInterval > 0 enables hypervisor checkpoints (DESIGN.md §13):
	// the supervisor seals a copy-on-write snapshot of the healthy CVM at
	// most this often (simulated time), and its watchdog restores from the
	// latest verified checkpoint instead of cold-restarting — near-zero
	// MTTR, with warm state provably unchanged since the checkpoint
	// surviving the swap. Off by default.
	SnapshotInterval time.Duration
	// SnapshotMaxAge bounds how stale a checkpoint may be and still be
	// restorable; an over-age checkpoint is refused (ESTALE) and recovery
	// falls back to a cold restart. Zero means no age limit.
	SnapshotMaxAge time.Duration

	// Vulns selects the historical bugs present on the platform.
	Vulns android.VulnProfile

	// DisableTrace turns off event recording (benchmarks).
	DisableTrace bool

	// Label names this device's container in traces and fleet
	// bookkeeping (NewFleet stamps "shard-N"); empty means "cvm".
	Label string

	// FleetSize > 1 is consumed by NewFleet: the number of CVM shards
	// the fleet boots, each a full service domain (own channels, ring,
	// grant table, boot generation, supervisor). NewDevice ignores it —
	// a Device is always exactly one CVM.
	FleetSize int
	// FleetPlacement selects the fleet's placement scheduler policy
	// (least-loaded, hashed, per-user). NewDevice ignores it.
	FleetPlacement PlacementPolicy
}

func (o *Options) applyDefaults() {
	if o.Mode == 0 {
		o.Mode = ModeAnception
	}
	if o.MemoryBytes == 0 {
		o.MemoryBytes = 1 << 30
	}
	if o.CVMMemoryBytes == 0 {
		o.CVMMemoryBytes = 64 << 20
	}
	if o.GuestKernelReserveBytes == 0 {
		// 64 MB total minus the paper's 49,228 KB available, minus the
		// 16 channel pages accounted separately.
		o.GuestKernelReserveBytes = (65536-49228)*1024 - 16*abi.PageSize
	}
	if o.ChannelPages == 0 {
		o.ChannelPages = 16
	}
}

// Device is one booted simulated smartphone.
type Device struct {
	Opts  Options
	Clock *sim.Clock
	Model sim.LatencyModel
	Trace *sim.Trace
	Phys  *kernel.Physical

	Host         *kernel.Kernel
	HostServices *android.Services

	CVM           *hypervisor.CVM
	Guest         *kernel.Kernel
	GuestServices *android.Services

	Proxies *proxy.Manager
	Layer   *Layer

	// ring/ringPool are set when Options.RingDepth > 0: the async
	// transport and the guest-side worker pool draining it.
	ring     *marshal.RingChannel
	ringPool *proxy.Pool

	// grants is set when Options.GrantThreshold > 0: the zero-copy
	// grant table shared by the layer and the guest side.
	grants *hypervisor.GrantTable

	// snapshots is set when Options.SnapshotInterval > 0: the checkpoint
	// policy feeding the supervisor's restore-first recovery path.
	snapshots *hypervisor.Snapshotter

	PM *android.PackageManager

	apps map[string]*App
}

// NewDevice boots a platform in the given configuration.
func NewDevice(opts Options) (*Device, error) {
	opts.applyDefaults()
	clock := sim.NewClock()
	model := sim.DefaultLatencyModel()
	var trace *sim.Trace
	if !opts.DisableTrace {
		trace = sim.NewTrace(clock)
	}

	d := &Device{
		Opts:  opts,
		Clock: clock,
		Model: model,
		Trace: trace,
		Phys:  kernel.NewPhysical(opts.MemoryBytes),
		PM:    android.NewPackageManager(),
		apps:  make(map[string]*App),
	}

	switch opts.Mode {
	case ModeNative:
		if err := d.bootNative(); err != nil {
			return nil, fmt.Errorf("boot native: %w", err)
		}
	case ModeAnception:
		if err := d.bootAnception(); err != nil {
			return nil, fmt.Errorf("boot anception: %w", err)
		}
	case ModeClassicalVM:
		if err := d.bootClassical(); err != nil {
			return nil, fmt.Errorf("boot classical vm: %w", err)
		}
	default:
		return nil, fmt.Errorf("unknown mode %d: %w", opts.Mode, abi.EINVAL)
	}
	return d, nil
}

func (d *Device) newKernel(name string, alloc *kernel.Allocator, minAddr uint64) (*kernel.Kernel, error) {
	fs := vfs.New()
	if err := android.BuildSystemImage(fs); err != nil {
		return nil, err
	}
	return d.newKernelWithFS(name, fs, alloc, minAddr)
}

func (d *Device) newKernelWithFS(name string, fs *vfs.FileSystem, alloc *kernel.Allocator, minAddr uint64) (*kernel.Kernel, error) {
	k := kernel.New(kernel.Config{
		Name:        name,
		Clock:       d.Clock,
		Model:       d.Model,
		Trace:       d.Trace,
		FS:          fs,
		Net:         netstack.New(name),
		Binder:      binder.NewDriver(),
		Alloc:       alloc,
		MmapMinAddr: minAddr,
	})
	if d.Opts.Vulns.NullSendpage {
		k.Net().InjectVulnerability(netstack.AFBluetooth, netstack.SockDgram, netstack.VulnNullSendpage)
	}
	k.SetVulns(kernel.KernelVulns{
		ProcMemWriteBypass: d.Opts.Vulns.ProcMemWriteBypass,
		PerfCounterBug:     d.Opts.Vulns.PerfCounterBug,
		PutUserUnchecked:   d.Opts.Vulns.PutUserUnchecked,
	})
	return k, nil
}

func (d *Device) minAddr() uint64 {
	if d.Opts.Vulns.MmapMinAddrZero {
		return 0
	}
	return abi.PageSize
}

func (d *Device) bootNative() error {
	k, err := d.newKernel("host", d.Phys.NewAllocator("host", kernel.Region{}), d.minAddr())
	if err != nil {
		return err
	}
	svcs, err := android.Boot(k, android.BootConfig{Vulns: d.Opts.Vulns})
	if err != nil {
		return err
	}
	d.Host, d.HostServices = k, svcs
	return nil
}

func (d *Device) bootAnception() error {
	// Host kernel: UI stack only.
	host, err := d.newKernel("host", d.Phys.NewAllocator("host", kernel.Region{}), d.minAddr())
	if err != nil {
		return err
	}
	hostSvcs, err := android.Boot(host, android.BootConfig{UIOnly: true, Vulns: d.Opts.Vulns})
	if err != nil {
		return err
	}

	// Container VM.
	cvm, err := hypervisor.Launch(d.Phys, hypervisor.Config{
		Clock:              d.Clock,
		Model:              d.Model,
		Trace:              d.Trace,
		MemoryBytes:        d.Opts.CVMMemoryBytes,
		KernelReserveBytes: d.Opts.GuestKernelReserveBytes,
		ChannelPages:       d.Opts.ChannelPages,
		Label:              d.Opts.Label,
	})
	if err != nil {
		return err
	}

	// Guest kernel: headless Android (Section IV-4) unless the A4
	// ablation asks for the full stack.
	guest, err := d.newKernel("cvm", cvm.GuestAllocator(), d.minAddr())
	if err != nil {
		return err
	}
	guestSvcs, err := android.Boot(guest, android.BootConfig{
		Headless: !d.Opts.FullCVMStack,
		Vulns:    d.Opts.Vulns,
	})
	if err != nil {
		return err
	}

	proxies := proxy.NewManager(guest, d.Clock, d.Model, d.Trace)
	proxies.SetNaiveDispatch(d.Opts.NaiveDispatch)

	var transport marshal.Transport
	var syncFallback marshal.Transport
	switch {
	case d.Opts.RingDepth > 0 || d.Opts.AutoTune:
		depth := d.Opts.RingDepth
		if depth <= 0 {
			depth = autoTuneRingDepth
		}
		ring := marshal.NewRingChannel(cvm, d.Clock, d.Model, d.Trace, depth, d.Opts.ChunkSize)
		switch {
		case d.Opts.RingReapBatch > 0:
			ring.SetReapBatch(d.Opts.RingReapBatch)
		case d.Opts.AutoTune:
			// The throughput sweeps reap at full depth (fewer, larger CQ
			// sweeps win); the adaptive plane defaults to the same.
			ring.SetReapBatch(depth)
		}
		d.ring = ring
		workers := d.Opts.RingWorkers
		if workers <= 0 && d.Opts.AutoTune {
			// One hot proxy worker. Worker count never changes modeled
			// throughput under concurrency (handlers charge the shared sim
			// clock either way), but sharding interleaved keys across cold
			// workers pays a ProxyDispatch wakeup per shard switch, so the
			// adaptive plane keeps a single shard warm.
			workers = 1
		}
		d.ringPool = proxy.NewPool(ring, workers, d.Clock, d.Model)
		d.ringPool.Start()
		transport = ring
		if d.Opts.AutoTune {
			// The adaptive plane mounts a synchronous fallback channel
			// alongside the ring so the policy can route sequential calls
			// off it; both channels share the CVM's mapped channel pages.
			syncFallback = marshal.NewPageChannel(cvm, d.Clock, d.Model, d.Opts.ChunkSize)
		}
	case d.Opts.SocketTransport:
		transport = marshal.NewSocketChannel(cvm, d.Clock, d.Model)
	default:
		transport = marshal.NewPageChannel(cvm, d.Clock, d.Model, d.Opts.ChunkSize)
	}

	if d.Opts.GrantThreshold > 0 || d.Opts.AutoTune {
		d.grants = hypervisor.NewGrantTable(cvm)
	}

	if d.Opts.SnapshotInterval > 0 {
		d.snapshots = hypervisor.NewSnapshotter(cvm, hypervisor.SnapshotterConfig{
			Interval: d.Opts.SnapshotInterval,
			MaxAge:   d.Opts.SnapshotMaxAge,
		})
	}

	layer, err := NewLayer(LayerConfig{
		Host:         host,
		Guest:        guest,
		CVM:          cvm,
		Proxies:      proxies,
		Transport:    transport,
		Clock:        d.Clock,
		Model:        d.Model,
		Trace:        d.Trace,
		KeepFSOnHost: d.Opts.KeepFSOnHost,
		CallDeadline: d.Opts.CallDeadline,

		RedirCache:       d.Opts.RedirCache || d.Opts.AutoTune,
		ReadAheadPages:   d.Opts.ReadAheadPages,
		CacheBudgetBytes: d.Opts.CacheBudgetBytes,
		CacheFlushDelay:  d.Opts.CacheFlushDelay,

		GrantTable:     d.grants,
		GrantThreshold: d.Opts.GrantThreshold,

		BinderSessions:   d.Opts.BinderSessions || d.Opts.AutoTune,
		BinderReplyCache: d.Opts.BinderReplyCache || d.Opts.AutoTune,

		NetBatch: d.Opts.NetBatch,

		AutoTune:      d.Opts.AutoTune,
		SyncTransport: syncFallback,
		RingForced:    d.Opts.RingDepth > 0,
		CacheForced:   d.Opts.RedirCache,

		FusionEnable:   d.Opts.FusionEnable || d.Opts.AutoTune,
		FusionMaxLinks: d.Opts.FusionMaxLinks,
	})
	if err != nil {
		return err
	}
	host.SetInterceptor(layer)

	// Key the guest stack to the boot generation so ConnectPolicy
	// re-checks fire after a restart, and apply the receive budget knob.
	guest.Net().SetGeneration(uint64(cvm.Generation()))
	if d.Opts.SockRcvBudget > 0 {
		guest.Net().SetDefaultRcvBudget(d.Opts.SockRcvBudget)
	}

	d.Host, d.HostServices = host, hostSvcs
	d.CVM, d.Guest, d.GuestServices = cvm, guest, guestSvcs
	d.Proxies, d.Layer = proxies, layer
	return nil
}

func (d *Device) bootClassical() error {
	// Bare host kernel (the hypervisor's dom0); no Android on it.
	host, err := d.newKernel("host", d.Phys.NewAllocator("host", kernel.Region{}), d.minAddr())
	if err != nil {
		return err
	}

	// One big guest carrying the entire stack, apps included. Size it
	// like a real Cells-style VM rather than the tiny Anception CVM.
	guestBytes := d.Opts.CVMMemoryBytes
	if guestBytes < 256<<20 {
		guestBytes = 256 << 20
	}
	cvm, err := hypervisor.Launch(d.Phys, hypervisor.Config{
		Clock:              d.Clock,
		Model:              d.Model,
		Trace:              d.Trace,
		MemoryBytes:        guestBytes,
		KernelReserveBytes: d.Opts.GuestKernelReserveBytes,
		ChannelPages:       0,
	})
	if err != nil {
		return err
	}
	guest, err := d.newKernel("guest", cvm.GuestAllocator(), d.minAddr())
	if err != nil {
		return err
	}
	guestSvcs, err := android.Boot(guest, android.BootConfig{Vulns: d.Opts.Vulns})
	if err != nil {
		return err
	}

	d.Host = host
	d.CVM, d.Guest, d.GuestServices = cvm, guest, guestSvcs
	return nil
}

// RestartCVM reboots the container after a crash (or proactively): the
// guest's physical region is wiped, a fresh guest kernel boots on the
// container's persistent filesystem, services restart, and proxies are
// re-enrolled lazily on each app's next redirected call. Host apps keep
// running throughout; their stale container descriptors surface as EBADF
// and are reopened by the app, the crash-only recovery story the design
// enables.
func (d *Device) RestartCVM() error {
	if d.Opts.Mode != ModeAnception {
		return fmt.Errorf("restart cvm: not an anception platform: %w", abi.EINVAL)
	}
	// Take the old guest down (idempotent if it already panicked) and
	// wipe its memory.
	d.Guest.Panic("container restart")
	if err := d.CVM.Relaunch(); err != nil {
		return err
	}

	// Boot a fresh guest kernel on the persistent container filesystem.
	guest, svcs, proxies, err := d.rebuildGuest()
	if err != nil {
		return err
	}
	d.Guest, d.GuestServices, d.Proxies = guest, svcs, proxies
	d.Layer.ReplaceGuest(guest, proxies)
	if d.Trace != nil {
		d.Trace.Record(sim.EvLifecycle, "cvm restarted: fresh guest kernel, %d services", len(svcs.Names()))
	}
	return nil
}

// Snapshots returns the device's snapshotter (nil when
// Options.SnapshotInterval == 0). Exposed for tests and tooling.
func (d *Device) Snapshots() *hypervisor.Snapshotter {
	return d.snapshots
}

// SnapshotStats snapshots the checkpoint/restore counters (zero value
// when snapshots are disabled).
func (d *Device) SnapshotStats() hypervisor.SnapshotStats {
	if d.snapshots == nil {
		return hypervisor.SnapshotStats{}
	}
	return d.snapshots.Stats()
}

// Checkpoint seals a checkpoint of the container right now, regardless of
// the interval. Returns false when snapshots are disabled.
func (d *Device) Checkpoint() bool {
	if d.snapshots == nil || d.Opts.Mode != ModeAnception {
		return false
	}
	d.snapshots.Checkpoint()
	return true
}

// MaybeCheckpoint satisfies the supervisor's Checkpointer hook: called at
// the end of each healthy probe, it seals a checkpoint if the configured
// interval has passed. No-op (false) when snapshots are disabled.
func (d *Device) MaybeCheckpoint() bool {
	if d.snapshots == nil || d.Opts.Mode != ModeAnception {
		return false
	}
	return d.snapshots.MaybeCheckpoint()
}

// SnapshotUsable is the first half of the supervisor's SnapshotRestorer
// interface: it reports whether a restore could be attempted right now.
func (d *Device) SnapshotUsable() bool {
	return d.snapshots != nil && d.Opts.Mode == ModeAnception && d.snapshots.Usable()
}

// CorruptSnapshot rots the latest checkpoint image in place (fault
// drills); the next restore attempt fails its checksum and the watchdog
// falls back to a cold restart. Wire it to the injector with
// Injector.SetSnapshotCorrupter(dev.CorruptSnapshot).
func (d *Device) CorruptSnapshot() {
	if d.snapshots != nil {
		d.snapshots.Corrupt()
	}
}

// RestoreFromSnapshot is the second half of the supervisor's
// SnapshotRestorer interface: rewind the container to the latest verified
// checkpoint instead of cold-restarting it. The old guest is taken down,
// the CVM's memory image is rewritten copy-on-write (only frames dirtied
// since the checkpoint), and a guest kernel is brought up over the
// restored state. Warm state provably unchanged since the checkpoint —
// clean cache pages, pre-checkpoint binder sessions and replies,
// pre-checkpoint grants — survives via the layer's generation-aware
// reconciliation; everything newer drains exactly as a restart would.
// On any failure (checksum mismatch, staleness, missing image) the
// checkpoint is invalidated and the error returned, so the watchdog falls
// back to the cold path.
func (d *Device) RestoreFromSnapshot() error {
	if d.Opts.Mode != ModeAnception {
		return fmt.Errorf("restore from snapshot: not an anception platform: %w", abi.EINVAL)
	}
	if d.snapshots == nil {
		return fmt.Errorf("restore from snapshot: snapshots disabled: %w", abi.ENOENT)
	}
	snap := d.snapshots.Latest()
	if snap == nil {
		return fmt.Errorf("restore from snapshot: no checkpoint: %w", abi.ENOENT)
	}
	// Capture the checkpoint moment before Restore consumes the image:
	// it is the reconciliation watermark for warm-state survival.
	takenAt := snap.TakenAt
	d.Guest.Panic("snapshot restore")
	if err := d.snapshots.Restore(); err != nil {
		return err
	}
	guest, svcs, proxies, err := d.rebuildGuest()
	if err != nil {
		return err
	}
	d.Guest, d.GuestServices, d.Proxies = guest, svcs, proxies
	d.Layer.RestoreGuest(guest, proxies, takenAt)
	if d.Trace != nil {
		d.Trace.Record(sim.EvLifecycle, "cvm restored from checkpoint taken at %v (gen %d)", takenAt, d.CVM.Generation())
	}
	return nil
}

// LiveUpgrade swaps the guest under load: seal a checkpoint of the
// running container, gate new submissions (EAGAIN, retryable), drain
// every in-flight redirected call and ring slot gracefully — never
// EHOSTDOWN — then bring up the replacement guest over the restored
// state and reopen the gate. Essentially all warm state survives, since
// the checkpoint is taken at the moment of the swap.
func (d *Device) LiveUpgrade() error {
	if d.Opts.Mode != ModeAnception {
		return fmt.Errorf("live upgrade: not an anception platform: %w", abi.EINVAL)
	}
	if d.snapshots == nil {
		return fmt.Errorf("live upgrade: snapshots disabled: %w", abi.ENOENT)
	}
	snap := d.snapshots.Checkpoint()
	takenAt := snap.TakenAt

	// Quiesce: gate first (new arrivals fail EAGAIN and retry), then wait
	// for in-flight calls to drain — the layer barrier covers every
	// guest-touching span, the ring barrier covers detached oneway slots.
	d.SetDegraded(true)
	d.Layer.QuiesceGuestCalls()
	if d.ring != nil {
		d.ring.Quiesce()
	}

	d.Guest.Panic("live upgrade")
	if err := d.snapshots.Restore(); err != nil {
		d.SetDegraded(false)
		return fmt.Errorf("live upgrade: %w", err)
	}
	guest, svcs, proxies, err := d.rebuildGuest()
	if err != nil {
		d.SetDegraded(false)
		return fmt.Errorf("live upgrade: %w", err)
	}
	d.Guest, d.GuestServices, d.Proxies = guest, svcs, proxies
	d.Layer.UpgradeGuest(guest, proxies, takenAt)
	d.SetDegraded(false)
	if d.Trace != nil {
		d.Trace.Record(sim.EvLifecycle, "live upgrade complete (gen %d)", d.CVM.Generation())
	}
	return d.Probe()
}

// rebuildGuest boots a fresh guest kernel + services on the container's
// persistent filesystem with a fresh proxy manager — the common tail of
// RestartCVM, RestoreFromSnapshot, and LiveUpgrade.
func (d *Device) rebuildGuest() (*kernel.Kernel, *android.Services, *proxy.Manager, error) {
	guest, err := d.newKernelWithFS("cvm", d.Guest.FS(), d.CVM.GuestAllocator(), d.minAddr())
	if err != nil {
		return nil, nil, nil, err
	}
	svcs, err := android.Boot(guest, android.BootConfig{
		Headless: !d.Opts.FullCVMStack,
		Vulns:    d.Opts.Vulns,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	proxies := proxy.NewManager(guest, d.Clock, d.Model, d.Trace)
	proxies.SetNaiveDispatch(d.Opts.NaiveDispatch)
	if d.Opts.SockRcvBudget > 0 {
		guest.Net().SetDefaultRcvBudget(d.Opts.SockRcvBudget)
	}
	return guest, svcs, proxies, nil
}

// AdvanceEpoch rolls every fast path's warm state to the CVM's current
// boot generation in one pinned pass (grants → ring → sockets → binder →
// cache; see Layer.AdvanceEpoch for the ordering contract). ReplaceGuest
// already does this implicitly on restart; the supervisor also calls it
// explicitly (via the EpochAdvancer hook) after each successful restart
// so no warm state can survive into the new container even if the
// restart path changes. Each participant no-ops when its fast path is
// disabled.
func (d *Device) AdvanceEpoch() {
	if d.Layer == nil || d.CVM == nil {
		return
	}
	d.Layer.AdvanceEpoch(d.CVM.Generation())
}

// NetStats snapshots the network fast-path counters.
func (d *Device) NetStats() NetPathStats {
	if d.Layer == nil {
		return NetPathStats{}
	}
	return d.Layer.NetStats()
}

// BinderStats snapshots the binder fast-path counters (zero value when
// both BinderSessions and BinderReplyCache are off).
func (d *Device) BinderStats() BinderStats {
	if d.Layer == nil {
		return BinderStats{}
	}
	return d.Layer.BinderStats()
}

// Grants returns the device's grant table (nil when the grant path is
// disabled). Exposed for tests and tooling that strand grants across a
// restart to probe the generation-tag machinery.
func (d *Device) Grants() *hypervisor.GrantTable {
	return d.grants
}

// GrantStats snapshots the zero-copy grant counters (zero value when
// Options.GrantThreshold == 0).
func (d *Device) GrantStats() GrantPathStats {
	if d.Layer == nil {
		return GrantPathStats{}
	}
	return d.Layer.GrantStats()
}

// Close shuts down the device's background machinery — today the async
// ring's worker pool. Queued submissions drain before the workers exit;
// devices on the synchronous channel need no Close.
func (d *Device) Close() {
	if d.ring == nil {
		return
	}
	d.ring.Close()
	d.ringPool.Wait()
}

// Label names this device's container ("cvm", or "shard-N" under a
// fleet).
func (d *Device) Label() string {
	if d.Opts.Label == "" {
		return "cvm"
	}
	return d.Opts.Label
}

// Probe sends one supervisor heartbeat through the Anception layer's data
// channel. It satisfies the supervisor's Target interface; see Layer.Ping
// for the error vocabulary.
func (d *Device) Probe() error {
	if d.Opts.Mode != ModeAnception {
		return fmt.Errorf("probe: not an anception platform: %w", abi.EINVAL)
	}
	return d.Layer.Ping()
}

// SetDegraded forwards circuit-breaker state to the Anception layer.
func (d *Device) SetDegraded(on bool) {
	if d.Layer != nil {
		d.Layer.SetDegraded(on)
	}
}

// GuestServiceAlive reports whether a named container service is still
// running. The supervisor checks critical services through this because a
// channel ping cannot see a dead service behind a live kernel.
func (d *Device) GuestServiceAlive(name string) bool {
	if d.GuestServices == nil {
		return false
	}
	svc := d.GuestServices.Service(name)
	if svc == nil || svc.Task == nil {
		return false
	}
	return svc.Task.CurrentState() == kernel.TaskRunning
}

// KillGuestService kills a named container service in place — a fault
// drill modeling a service crash that leaves the guest kernel up.
func (d *Device) KillGuestService(name string) error {
	if d.Opts.Mode != ModeAnception {
		return fmt.Errorf("kill guest service: not an anception platform: %w", abi.EINVAL)
	}
	svc := d.GuestServices.Service(name)
	if svc == nil || svc.Task == nil {
		return fmt.Errorf("kill guest service: no service %q: %w", name, abi.ENOENT)
	}
	svc.Task.SetState(kernel.TaskDead)
	if d.Trace != nil {
		d.Trace.Record(sim.EvFault, "injected: guest service %q killed (pid=%d)", name, svc.Task.PID)
	}
	return nil
}

// InjectGuestPanic crashes the container kernel — a fault drill modeling
// a guest kernel panic. Recovery is RestartCVM (typically driven by the
// supervisor's watchdog).
func (d *Device) InjectGuestPanic(reason string) {
	if d.Opts.Mode != ModeAnception || d.Guest == nil {
		return
	}
	if d.Trace != nil {
		d.Trace.Record(sim.EvFault, "injected: guest kernel panic (%s)", reason)
	}
	d.Guest.Panic(reason)
}

// AppKernel returns the kernel apps execute on: the host for native and
// Anception, the guest for classical virtualization.
func (d *Device) AppKernel() *kernel.Kernel {
	if d.Opts.Mode == ModeClassicalVM {
		return d.Guest
	}
	return d.Host
}

// UIServices returns the services owning the UI stack (where user input
// lands): host-side except under classical virtualization.
func (d *Device) UIServices() *android.Services {
	if d.Opts.Mode == ModeClassicalVM {
		return d.GuestServices
	}
	return d.HostServices
}

// DelegableServices returns the services Anception deprivileges: guest-
// side under Anception and classical VM, host-side natively.
func (d *Device) DelegableServices() *android.Services {
	if d.Opts.Mode == ModeNative {
		return d.HostServices
	}
	return d.GuestServices
}

// QueueInput delivers user input (e.g. a typed password) destined for an
// app, through whichever window manager owns the screen.
func (d *Device) QueueInput(app *App, event []byte) {
	d.UIServices().WM.QueueInput(app.UID, event)
}

// CVMMemory reports the container's memory statistics (Section VI-C).
func (d *Device) CVMMemory() hypervisor.MemoryStats {
	if d.CVM == nil || d.Guest == nil {
		return hypervisor.MemoryStats{}
	}
	return d.CVM.Memory(d.Guest.ResidentProcessPages())
}

// SetCVMFirewall installs a host-controlled outbound-connection policy on
// the stack that services app network calls — the CVM's under Anception
// ("the CVM's external connectivity can be controlled from the host by
// firewall rules", Section III-D). Pass nil to clear.
func (d *Device) SetCVMFirewall(policy netstack.ConnectPolicy) {
	if d.Opts.Mode == ModeAnception {
		d.Guest.Net().SetConnectPolicy(policy)
		return
	}
	d.AppKernel().Net().SetConnectPolicy(policy)
}

// RegisterRemote installs a scripted remote server reachable from the
// network stack that services app socket calls.
func (d *Device) RegisterRemote(addr string, h netstack.RemoteHandler) {
	// Under Anception the CVM owns external connectivity; natively and
	// under classical VM it is the app kernel's stack.
	if d.Opts.Mode == ModeAnception {
		d.Guest.Net().RegisterRemote(addr, h)
		return
	}
	d.AppKernel().Net().RegisterRemote(addr, h)
}
