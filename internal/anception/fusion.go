package anception

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"anception/internal/abi"
	"anception/internal/kernel"
	"anception/internal/marshal"
	"anception/internal/redirect"
	"anception/internal/sim"
)

// Syscall fusion (DESIGN.md §17): linked ring submissions execute
// dependent call chains guest-side in one round trip. A chain of N
// dependent calls — open→fstat→read→close is the canonical shape —
// normally pays N doorbell/reap round trips because each call needs the
// previous one's result (the descriptor, the file size, the byte
// offset). Fusion packs the whole chain into ONE ring slot with
// IO_LINK-style register bindings (FDFrom, UseCursor) resolved by the
// guest, so the chain costs one submit trap, one (coalesced) doorbell,
// and one completion.
//
// Two entry points share the machinery: the explicit Layer.Chain API
// (Proc.Chain), and a transparent per-task pattern detector hooked into
// the intercept path that recognizes hot chain shapes (open→fstat[→
// read], send→recv) and speculatively fuses them when the learned
// chain cost beats independent ring round trips, falling back to
// per-call dispatch on misprediction.

// ChainCall is one link of a dependent chain submitted through
// Layer.Chain / Proc.Chain. Args fields are the usual per-call
// arguments; the two bindings resolve against earlier links:
//
//   - FDFrom >= 0 replaces Args.FD with the descriptor produced by
//     link FDFrom (its Result.FD, or Ret for fd-returning calls).
//     FDFrom == -1 uses Args.FD verbatim (a host descriptor).
//   - UseCursor offsets the link by the chain's running bytes-read
//     cursor, so consecutive reads walk a file without host-visible
//     offset bookkeeping.
type ChainCall struct {
	Args      kernel.Args
	FDFrom    int
	UseCursor bool
}

// FusionStats counts syscall-fusion outcomes, surfaced per shard via
// LayerStats.Fusion.
type FusionStats struct {
	// Explicit counts Layer.Chain invocations; Fallbacks counts chains
	// (explicit or speculative) served by per-call dispatch instead of
	// a fused submission.
	Explicit  int64
	Fallbacks int64
	// Chains counts fused wire submissions; Submitted/Completed/Failed
	// count their links with the epoch identity
	// Submitted = Completed + Failed (a link that never ran because an
	// earlier link failed — or the CVM died mid-chain — is Failed).
	Chains    int64
	Submitted int64
	Completed int64
	Failed    int64
	// CacheServed counts links served host-side by the redirection
	// cache and skipped from the wire chain; GrantLinks counts bulk
	// links peeled onto the zero-copy grant path.
	CacheServed int64
	GrantLinks  int64
	// PatternHits counts detector pattern-counter increments;
	// SpecServed counts calls answered from a speculative fused chain;
	// Mispredicts counts speculated results thrown away because the app
	// diverged; SpecDropped counts speculative results discarded for
	// other reasons (close with results pending, dry recv, epoch roll).
	PatternHits int64
	SpecServed  int64
	Mispredicts int64
	SpecDropped int64
}

// DefaultFusionMaxLinks bounds one fused submission; longer chains fall
// back to per-call dispatch. The wire codec caps harder at
// marshal.MaxChainLinks.
const DefaultFusionMaxLinks = 8

// fuseConfidence is how many consecutive pattern sightings the detector
// needs before it speculates.
const fuseConfidence = 2

// specKey addresses per-descriptor speculative state.
type specKey struct {
	pid int
	fd  int
}

// specResult is one buffered speculative result awaiting the app's
// matching call.
type specResult struct {
	nr  abi.SyscallNr
	off int64
	res kernel.Result
}

// taskFusion is the per-task pattern detector state: the previous
// redirect-class call and confidence counters for the recognized chain
// shapes. All counters are plain ints under the layerFusion mutex —
// decisions are pure functions of call order, so runs with the same
// seed fuse identically.
type taskFusion struct {
	lastNr abi.SyscallNr

	openFstat  int // open followed by fstat
	fstatPread int // fstat followed by pread at offset 0
	preadSize  int // learned pread size for the speculative read link
	sendRecv   int // send followed by recv
	recvSize   int // learned recv size for the speculative recv link
}

// layerFusion is the fusion layer's mutable state.
type layerFusion struct {
	maxLinks int

	mu     sync.Mutex
	tasks  map[int]*taskFusion
	spec   map[specKey][]specResult
	sticky map[specKey][]byte // buffered speculative recv bytes

	explicit    atomic.Int64
	fallbacks   atomic.Int64
	chains      atomic.Int64
	submitted   atomic.Int64
	completed   atomic.Int64
	failed      atomic.Int64
	cacheServed atomic.Int64
	grantLinks  atomic.Int64
	patternHits atomic.Int64
	specServed  atomic.Int64
	mispredicts atomic.Int64
	specDropped atomic.Int64
}

func newLayerFusion(maxLinks int) *layerFusion {
	if maxLinks <= 0 {
		maxLinks = DefaultFusionMaxLinks
	}
	if maxLinks > marshal.MaxChainLinks {
		maxLinks = marshal.MaxChainLinks
	}
	return &layerFusion{
		maxLinks: maxLinks,
		tasks:    make(map[int]*taskFusion),
		spec:     make(map[specKey][]specResult),
		sticky:   make(map[specKey][]byte),
	}
}

// fusionStats snapshots the fusion counters.
func (l *Layer) fusionStats() FusionStats {
	f := l.fusion
	if f == nil {
		return FusionStats{}
	}
	return FusionStats{
		Explicit:    f.explicit.Load(),
		Fallbacks:   f.fallbacks.Load(),
		Chains:      f.chains.Load(),
		Submitted:   f.submitted.Load(),
		Completed:   f.completed.Load(),
		Failed:      f.failed.Load(),
		CacheServed: f.cacheServed.Load(),
		GrantLinks:  f.grantLinks.Load(),
		PatternHits: f.patternHits.Load(),
		SpecServed:  f.specServed.Load(),
		Mispredicts: f.mispredicts.Load(),
		SpecDropped: f.specDropped.Load(),
	}
}

// drainFusion is fusion's epoch participant: speculative results and
// sticky recv bytes were produced by the old container and may never be
// served against the new one. Detector confidence counters survive —
// they describe app behavior, not container state.
func (l *Layer) drainFusion(int) {
	f := l.fusion
	if f == nil {
		return
	}
	f.mu.Lock()
	for k, q := range f.spec {
		f.specDropped.Add(int64(len(q)))
		delete(f.spec, k)
	}
	for k, b := range f.sticky {
		if len(b) > 0 {
			f.specDropped.Add(1)
		}
		delete(f.sticky, k)
	}
	f.mu.Unlock()
}

// SetChainStep forwards a fault-drill hook to the current proxy
// manager: it fires before each fused chain link executes guest-side,
// so drills can kill the CVM between links K and K+1. Pass nil to
// clear. The hook does not survive a guest swap.
func (l *Layer) SetChainStep(f func(next int)) {
	l.currentState().proxies.SetChainStep(f)
}

// chainWorthIt asks the cost model whether a fused N-link chain is
// expected to beat N independent ring round trips. Without a model
// (AutoTune off) fusion is optimistic — the static configuration asked
// for it.
func (l *Layer) chainWorthIt(links int) bool {
	if m := l.policy.model; m != nil {
		return m.chainWorthIt(links)
	}
	return true
}

// Chain executes a dependent call chain on behalf of a host task: fused
// into linked ring submissions when the transport allows, per-call
// dispatch otherwise (including under a ForceSyncUncached override,
// where each link is byte-identical to an unfused call).
func (l *Layer) Chain(t *kernel.Task, calls []ChainCall) []kernel.Result {
	if len(calls) == 0 {
		return nil
	}
	if err := validateChain(calls); err != nil {
		results := make([]kernel.Result, len(calls))
		for i := range results {
			results[i] = kernel.Result{Ret: -1, Err: err}
		}
		return results
	}
	if l.fusion != nil {
		l.fusion.explicit.Add(1)
	}
	if results, ok := l.tryFusedChain(t, calls); ok {
		return results
	}
	if l.fusion != nil {
		l.fusion.fallbacks.Add(1)
	}
	return runChainUnfused(func(a kernel.Args) kernel.Result {
		return l.host.Invoke(t, a)
	}, calls)
}

func validateChain(calls []ChainCall) error {
	if len(calls) > marshal.MaxChainLinks {
		return fmt.Errorf("chain of %d links exceeds %d: %w", len(calls), marshal.MaxChainLinks, abi.EINVAL)
	}
	for i := range calls {
		if calls[i].FDFrom < -1 || calls[i].FDFrom >= i {
			return fmt.Errorf("link %d: fd binding %d out of range: %w", i, calls[i].FDFrom, abi.EINVAL)
		}
	}
	return nil
}

// runChainUnfused executes a chain one call at a time through the given
// dispatcher, resolving bindings host-side: FDFrom takes the earlier
// link's returned descriptor, UseCursor accumulates read returns. A
// failed link short-circuits the rest with its error. This is the
// fallback arm — on an anception device each call dispatches exactly
// like an unfused syscall, which keeps the pinned paper rows
// byte-identical under ForceSyncUncached.
func runChainUnfused(invoke func(kernel.Args) kernel.Result, calls []ChainCall) []kernel.Result {
	results := make([]kernel.Result, len(calls))
	var cursor int64
	var failErr error
	for i := range calls {
		if failErr != nil {
			results[i] = kernel.Result{Ret: -1, Err: failErr}
			continue
		}
		a := calls[i].Args
		if calls[i].FDFrom >= 0 {
			prev := results[calls[i].FDFrom]
			if prev.FD > 0 {
				a.FD = prev.FD
			} else {
				a.FD = int(prev.Ret)
			}
		}
		if calls[i].UseCursor {
			a.Off += cursor
		}
		if isReadLike(a.Nr) && len(a.Buf) == 0 && a.Size > 0 {
			a.Buf = make([]byte, a.Size)
		}
		res := invoke(a)
		results[i] = res
		if !res.Ok() {
			failErr = res.Err
			continue
		}
		if isReadLike(a.Nr) && res.Ret > 0 {
			cursor += res.Ret
		}
	}
	return results
}

// tryFusedChain runs the chain over linked ring submissions. ok=false
// means the caller must fall back to per-call dispatch (fusion off,
// forced sync, no async ring, chain too long, or a link the fused plan
// cannot represent).
func (l *Layer) tryFusedChain(t *kernel.Task, calls []ChainCall) ([]kernel.Result, bool) {
	f := l.fusion
	if f == nil || len(calls) > f.maxLinks || l.policy.forceSync() {
		return nil, false
	}
	st := l.currentState()
	ring, async := st.transport.(marshal.AsyncTransport)
	if !async {
		return nil, false
	}
	return l.chainFused(st, ring, t, calls)
}

// isOpenLike reports links that mint a descriptor the host must adopt.
func isOpenLike(nr abi.SyscallNr) bool {
	switch nr {
	case abi.SysOpen, abi.SysOpenat, abi.SysCreat, abi.SysSocket:
		return true
	default:
		return false
	}
}

// chainFused is the fused execution plan. The chain is walked in order
// and split into wire segments: cache-servable links are answered
// host-side and skipped from the wire, grant-eligible bulk links peel
// onto the zero-copy path between segments, and everything else ships
// as one linked submission per segment (one doorbell, one completion).
// Dirty cache state on every explicitly-named descriptor is flushed
// before the chain so guest-side links see coherent bytes.
func (l *Layer) chainFused(st *layerState, ring marshal.AsyncTransport, t *kernel.Task, calls []ChainCall) ([]kernel.Result, bool) {
	f := l.fusion
	n := len(calls)

	// Resolve explicitly-named descriptors. A non-remote descriptor —
	// or an open whose path routes to the host — makes the chain
	// unfusable: those links must run on the host, so the whole chain
	// takes the per-call path.
	entries := make([]*kernel.FDEntry, n)
	for i := range calls {
		a := &calls[i].Args
		switch a.Nr {
		case abi.SysOpen, abi.SysOpenat, abi.SysCreat:
			p := l.absPath(t, a.Path)
			if l.keepFSOnHost || l.engine.DecideOpen(p).Route == redirect.RouteHost {
				return nil, false
			}
		}
		if calls[i].FDFrom >= 0 || a.FD <= 0 {
			continue
		}
		e := t.FD(a.FD)
		if e == nil || e.Kind != kernel.FDRemote {
			return nil, false
		}
		entries[i] = e
	}

	// Flush-before-chain: buffered writes overlapping any chained
	// descriptor must reach the guest before the chain executes there.
	// A flush failure falls back to per-call dispatch, which carries
	// the deferred write-back error to its close exactly like the
	// unfused path.
	if !l.cacheBypassed(st) {
		flushed := make(map[*kernel.FDEntry]bool, n)
		for _, e := range entries {
			if e == nil || flushed[e] {
				continue
			}
			flushed[e] = true
			if _, failed := l.flushFDFor(st, t, e); failed {
				return nil, false
			}
		}
	}

	// referenced marks links whose descriptor result a later link binds;
	// they must execute on the wire so the guest can resolve the binding.
	referenced := make([]bool, n)
	for i := range calls {
		if calls[i].FDFrom >= 0 {
			referenced[calls[i].FDFrom] = true
		}
	}

	// The host pays one submit trap for the whole chain.
	l.clock.Advance(l.model.SyscallEntry)

	results := make([]kernel.Result, n)
	raw := make([]kernel.Result, n) // wire results before host-fd rewriting
	onWire := make([]bool, n)
	var chainErr error

	// seg accumulates original link indices for the pending wire segment.
	var seg []int
	segFDs := make(map[int]bool) // host fds touched by pending wire links
	flushSeg := func() bool {
		if len(seg) == 0 || chainErr != nil {
			seg = seg[:0]
			segFDs = make(map[int]bool)
			return chainErr == nil
		}
		links := make([]marshal.ChainLink, len(seg))
		argCopies := make([]kernel.Args, len(seg))
		pos := make(map[int]int, len(seg)) // original index -> segment index
		for si, oi := range seg {
			pos[oi] = si
		}
		for si, oi := range seg {
			a := calls[oi].Args
			fdFrom := -1
			switch {
			case calls[oi].FDFrom >= 0:
				if si2, same := pos[calls[oi].FDFrom]; same {
					fdFrom = si2
				} else {
					// The producing link ran in an earlier segment: its raw
					// wire result already names the guest descriptor.
					prev := raw[calls[oi].FDFrom]
					if prev.FD > 0 {
						a.FD = prev.FD
					} else {
						a.FD = int(prev.Ret)
					}
				}
			case entries[oi] != nil:
				a.FD = entries[oi].GuestFD
			}
			if a.Nr == abi.SysOpen || a.Nr == abi.SysOpenat || a.Nr == abi.SysCreat {
				a.Path = l.absPath(t, a.Path)
			}
			argCopies[si] = a
			links[si] = marshal.ChainLink{Args: &argCopies[si], FDFrom: fdFrom, UseCursor: calls[oi].UseCursor}
		}
		cr, ok := l.forwardChainRing(st, ring, t, links)
		f.chains.Add(1)
		f.submitted.Add(int64(len(seg)))
		f.completed.Add(int64(cr.Executed))
		f.failed.Add(int64(len(seg) - cr.Executed))
		for si, oi := range seg {
			raw[oi] = cr.Results[si]
			results[oi] = cr.Results[si]
			onWire[oi] = true
		}
		if !ok || cr.Executed < len(seg) {
			for si := range links {
				if !cr.Results[si].Ok() {
					chainErr = cr.Results[si].Err
					break
				}
			}
			if chainErr == nil {
				chainErr = abi.EIO
			}
		}
		seg = seg[:0]
		segFDs = make(map[int]bool)
		return chainErr == nil
	}

	for i := range calls {
		if chainErr != nil {
			results[i] = kernel.Result{Ret: -1, Err: chainErr}
			continue
		}
		c := &calls[i]
		a := c.Args // host-fd view for the cache and grant helpers

		// Cache-served links skip the wire entirely. Only side-effect-free
		// attribute/read links with an explicit descriptor qualify, and
		// only while no earlier pending wire link touches the same
		// descriptor (its effect has not executed yet).
		if entries[i] != nil && !referenced[i] && !c.UseCursor && !segFDs[a.FD] &&
			(a.Nr == abi.SysFstat || a.Nr == abi.SysPread64) && !l.cacheBypassed(st) {
			if res, handled := l.cachedFDCall(st, t, entries[i], &a); handled {
				results[i] = res
				f.cacheServed.Add(1)
				if !res.Ok() {
					chainErr = res.Err
				}
				continue
			}
		}

		// Grant-eligible bulk links peel onto the zero-copy path between
		// wire segments: the learned crossover says page flipping beats
		// copying this payload through the ring.
		if entries[i] != nil && !referenced[i] && !c.UseCursor && l.grantEligible(&a) {
			if !flushSeg() {
				results[i] = kernel.Result{Ret: -1, Err: chainErr}
				continue
			}
			res := l.forwardGrantFD(st, t, entries[i], &a)
			results[i] = res
			f.grantLinks.Add(1)
			if !res.Ok() {
				chainErr = res.Err
			}
			continue
		}

		seg = append(seg, i)
		if c.FDFrom < 0 && a.FD > 0 {
			segFDs[a.FD] = true
		}
	}
	flushSeg()

	// Post-processing, in chain order: adopt descriptors minted on the
	// wire, retire host bookkeeping for chained closes, write read data
	// back into caller buffers, and keep the cache's invalidation
	// bookkeeping coherent for explicit-descriptor links.
	hostFDFor := make(map[int]int)
	for i := range calls {
		c := &calls[i]
		res := results[i]
		if onWire[i] && res.Ok() {
			if isOpenLike(c.Args.Nr) && raw[i].FD > 0 {
				p := c.Args.Path
				if c.Args.Nr == abi.SysSocket {
					p = "sock:"
				} else {
					p = l.absPath(t, p)
				}
				hostFD := t.InstallFD(&kernel.FDEntry{Kind: kernel.FDRemote, GuestFD: raw[i].FD, Path: p})
				if c.Args.Nr != abi.SysSocket {
					l.noteRemoteOpen(p, c.Args.Flags)
				}
				results[i] = kernel.Result{Ret: int64(hostFD), FD: hostFD, Data: raw[i].Data}
				hostFDFor[i] = hostFD
			}
			if c.Args.Nr == abi.SysClose {
				switch {
				case c.FDFrom >= 0:
					if hfd, ok := hostFDFor[c.FDFrom]; ok {
						if e := t.FD(hfd); e != nil {
							t.CloseFD(hfd)
							l.forgetFD(e)
						}
						delete(hostFDFor, c.FDFrom)
					}
				case entries[i] != nil:
					t.CloseFD(c.Args.FD)
					l.forgetFD(entries[i])
				}
			}
		}
		if onWire[i] && entries[i] != nil {
			l.noteForwardedFDOp(entries[i], c.Args.Nr)
		}
		if res.Ok() && len(res.Data) > 0 {
			if len(c.Args.Iov) > 0 {
				scatterIntoIov(c.Args.Iov, res.Data)
			} else if len(c.Args.Buf) > 0 {
				copy(c.Args.Buf, res.Data)
			}
		}
	}
	return results, true
}

// forwardChainRing moves one wire segment through a single ring slot:
// the linked submission is encoded as a chain frame, the guest executes
// every link in one trap context (proxy.ExecuteChainDrained), and the
// completion carries the positional result vector home. Deadline,
// degraded and host-down semantics match forwardRing slot-for-slot. On
// a transport failure every link reports the failure. ok mirrors
// whether the segment's results are genuine guest results.
func (l *Layer) forwardChainRing(st *layerState, ring marshal.AsyncTransport, t *kernel.Task, links []marshal.ChainLink) (marshal.ChainResult, bool) {
	failAll := func(err error) (marshal.ChainResult, bool) {
		cr := marshal.ChainResult{Results: make([]kernel.Result, len(links))}
		for i := range cr.Results {
			cr.Results[i] = kernel.Result{Ret: -1, Err: err}
		}
		return cr, false
	}
	if !l.enterGuestCall(st) {
		l.counters.failedFast.Add(1)
		return failAll(fmt.Errorf("container circuit breaker open: %w", abi.EAGAIN))
	}
	defer l.exitGuestCall()
	p, err := st.proxies.Ensure(t)
	if err != nil {
		if errors.Is(err, abi.EHOSTDOWN) {
			l.counters.hostDown.Add(1)
		}
		return failAll(fmt.Errorf("enroll proxy: %w", err))
	}
	l.counters.redirected.Add(int64(len(links)))
	if l.trace != nil {
		l.trace.Record(sim.EvRedirect, "redirect fused chain of %d links pid=%d -> proxy %d (ring)", len(links), t.PID, p.PID)
	}

	// Read-like links ship only their size; the data rides home in the
	// completion (same output-pointer rule as single-call frames).
	enc := make([]marshal.ChainLink, len(links))
	strip := make([]kernel.Args, len(links))
	for i, ln := range links {
		strip[i] = *ln.Args
		if isReadLike(strip[i].Nr) && strip[i].Buf != nil {
			strip[i].Size = len(strip[i].Buf)
			strip[i].Buf = nil
		}
		enc[i] = marshal.ChainLink{Args: &strip[i], FDFrom: ln.FDFrom, UseCursor: ln.UseCursor}
	}
	payload := marshal.EncodeChain(enc)
	l.clock.Advance(time.Duration(len(payload)) * l.model.MarshalPerByte)

	m := l.policy.model
	start := l.clock.Now()
	key := ringKey(t, enc[0].Args)
	pending, serr := ring.Submit(payload, key, func(req []byte) []byte {
		decoded, derr := marshal.DecodeChain(req)
		if derr != nil {
			return marshal.EncodeChainResult(marshal.ChainResult{Results: []kernel.Result{{Ret: -1, Err: abi.EINVAL}}})
		}
		resp := marshal.EncodeChainResult(st.proxies.ExecuteChainDrained(p, decoded))
		if st.tamper != nil {
			resp = st.tamper(resp)
		}
		return resp
	})
	if serr != nil {
		res := l.transportFailure(t, links[0].Args, start, serr)
		return failAll(res.Err)
	}
	respBytes, werr := pending.Wait()
	if werr != nil {
		res := l.transportFailure(t, links[0].Args, start, werr)
		return failAll(res.Err)
	}
	if l.clock.Now()-start > l.deadline {
		l.counters.timedOut.Add(1)
		if l.trace != nil {
			l.trace.Record(sim.EvTimeout, "fused chain pid=%d completed past %v deadline", t.PID, l.deadline)
		}
		return failAll(fmt.Errorf("chain exceeded %v deadline: %w", l.deadline, abi.ETIMEDOUT))
	}
	cr, derr := marshal.DecodeChainResult(respBytes)
	if derr != nil {
		return failAll(derr)
	}
	if len(cr.Results) != len(links) {
		return failAll(fmt.Errorf("chain reply has %d results for %d links: %w", len(cr.Results), len(links), abi.EIO))
	}
	if m != nil {
		m.observeChain(len(links), l.clock.Now()-start)
	}
	return cr, true
}

// --- transparent pattern detector ---

// fusionIntercept runs at the top of the redirect-class dispatch. It
// serves calls answered by an earlier speculative chain, observes the
// per-task call sequence, and — when a hot chain shape is confident and
// the cost model says fusion wins — speculatively executes the learned
// chain, serving the head call now and buffering the rest. Returning
// ok=false hands the call to normal dispatch.
func (l *Layer) fusionIntercept(t *kernel.Task, args *kernel.Args) (kernel.Result, bool) {
	f := l.fusion
	key := specKey{pid: t.PID, fd: args.FD}

	// 1. Pending speculative results on this descriptor.
	f.mu.Lock()
	if q, ok := f.spec[key]; ok && len(q) > 0 {
		head := q[0]
		switch {
		case args.Nr == abi.SysClose:
			// The app closed before consuming the speculation: results are
			// wasted, but nothing diverged.
			f.specDropped.Add(int64(len(q)))
			delete(f.spec, key)
		case args.Nr == head.nr && (head.nr != abi.SysPread64 || (args.Off == head.off && len(args.Buf) <= len(head.res.Data))):
			f.spec[key] = q[1:]
			if len(f.spec[key]) == 0 {
				delete(f.spec, key)
			}
			f.specServed.Add(1)
			f.mu.Unlock()
			return serveSpec(head.res, args), true
		default:
			// Divergence: throw the speculation away and relearn.
			f.mispredicts.Add(int64(len(q)))
			delete(f.spec, key)
			if tf := f.tasks[t.PID]; tf != nil {
				tf.openFstat, tf.fstatPread, tf.sendRecv = 0, 0, 0
			}
		}
	}
	// Sticky recv bytes from a fused send→recv pair.
	if args.Nr == abi.SysClose {
		if b := f.sticky[key]; len(b) > 0 {
			f.specDropped.Add(1)
		}
		delete(f.sticky, key)
	}
	if args.Nr == abi.SysRecv && len(f.sticky[key]) > 0 && len(args.Buf) > 0 {
		b := f.sticky[key]
		n := copy(args.Buf, b)
		if n == len(b) {
			delete(f.sticky, key)
		} else {
			f.sticky[key] = b[n:]
		}
		f.specServed.Add(1)
		f.mu.Unlock()
		return kernel.Result{Ret: int64(n), Data: args.Buf[:n]}, true
	}

	// 2. Observe the call sequence and update pattern confidence.
	tf := f.tasks[t.PID]
	if tf == nil {
		tf = &taskFusion{}
		f.tasks[t.PID] = tf
	}
	switch {
	case tf.lastNr == abi.SysOpen && args.Nr == abi.SysFstat:
		tf.openFstat++
		f.patternHits.Add(1)
	case tf.lastNr == abi.SysFstat && args.Nr == abi.SysPread64 && args.Off == 0:
		tf.fstatPread++
		tf.preadSize = payloadLen(args)
		f.patternHits.Add(1)
	case tf.lastNr == abi.SysSend && args.Nr == abi.SysRecv:
		tf.sendRecv++
		tf.recvSize = payloadLen(args)
		f.patternHits.Add(1)
	}
	switch args.Nr {
	case abi.SysOpen, abi.SysOpenat, abi.SysCreat:
		tf.lastNr = abi.SysOpen
	default:
		tf.lastNr = args.Nr
	}

	// 3. Speculative fusion on a confident head call.
	switch {
	case tf.lastNr == abi.SysOpen && tf.openFstat >= fuseConfidence:
		chain := []ChainCall{
			{Args: *args, FDFrom: -1},
			{Args: kernel.Args{Nr: abi.SysFstat}, FDFrom: 0},
		}
		if tf.fstatPread >= fuseConfidence && tf.preadSize > 0 {
			chain = append(chain, ChainCall{Args: kernel.Args{Nr: abi.SysPread64, Size: tf.preadSize}, FDFrom: 0})
		}
		f.mu.Unlock()
		return l.speculateOpenChain(t, args, chain)
	case args.Nr == abi.SysSend && tf.sendRecv >= fuseConfidence && tf.recvSize > 0:
		f.mu.Unlock()
		return l.speculateSendRecv(t, args, tf.recvSize)
	}
	f.mu.Unlock()
	return kernel.Result{}, false
}

// serveSpec adapts a buffered speculative result to the live call's
// buffers.
func serveSpec(res kernel.Result, args *kernel.Args) kernel.Result {
	if res.Ok() && len(res.Data) > 0 && len(args.Buf) > 0 {
		n := copy(args.Buf, res.Data)
		return kernel.Result{Ret: int64(n), FD: res.FD, Data: args.Buf[:n]}
	}
	return res
}

// speculateOpenChain fuses a confident open→fstat[→read] shape: the
// open is served now and the trailing results are buffered against the
// minted descriptor for the app's next calls.
func (l *Layer) speculateOpenChain(t *kernel.Task, args *kernel.Args, chain []ChainCall) (kernel.Result, bool) {
	f := l.fusion
	// The open must actually be container-bound; host-routed paths are
	// never fused.
	p := l.absPath(t, args.Path)
	if l.keepFSOnHost || l.engine.DecideOpen(p).Route == redirect.RouteHost {
		return kernel.Result{}, false
	}
	if !l.chainWorthIt(len(chain)) {
		return kernel.Result{}, false
	}
	results, ok := l.tryFusedChain(t, chain)
	if !ok {
		return kernel.Result{}, false
	}
	open := results[0]
	if !open.Ok() || open.FD <= 0 {
		// A failed open is a genuine result, not a misprediction; the
		// trailing links short-circuited and nothing is buffered.
		return open, true
	}
	key := specKey{pid: t.PID, fd: open.FD}
	f.mu.Lock()
	q := f.spec[key][:0]
	for i := 1; i < len(chain); i++ {
		q = append(q, specResult{nr: chain[i].Args.Nr, off: chain[i].Args.Off, res: results[i]})
	}
	f.spec[key] = q
	f.mu.Unlock()
	return open, true
}

// speculateSendRecv fuses a confident send→recv pair: the send is
// served now and the reply bytes stick to the descriptor for the app's
// next recv. A dry recv (no data yet) drops the speculation and backs
// the pattern off instead of buffering an EAGAIN the real call might
// not see.
func (l *Layer) speculateSendRecv(t *kernel.Task, args *kernel.Args, recvSize int) (kernel.Result, bool) {
	f := l.fusion
	if e := t.FD(args.FD); e == nil || e.Kind != kernel.FDRemote {
		return kernel.Result{}, false
	}
	if !l.chainWorthIt(2) {
		return kernel.Result{}, false
	}
	chain := []ChainCall{
		{Args: *args, FDFrom: -1},
		{Args: kernel.Args{Nr: abi.SysRecv, FD: args.FD, Size: recvSize}, FDFrom: -1},
	}
	results, ok := l.tryFusedChain(t, chain)
	if !ok {
		return kernel.Result{}, false
	}
	send, recv := results[0], results[1]
	if !send.Ok() {
		return send, true
	}
	f.mu.Lock()
	if recv.Ok() && recv.Ret > 0 && len(recv.Data) > 0 {
		key := specKey{pid: t.PID, fd: args.FD}
		f.sticky[key] = append(f.sticky[key], recv.Data[:recv.Ret]...)
	} else {
		// Nothing to read yet: back off so a chatty-but-async peer does
		// not keep paying for wasted speculative links.
		f.specDropped.Add(1)
		if tf := f.tasks[t.PID]; tf != nil {
			tf.sendRecv = 0
		}
	}
	f.mu.Unlock()
	return send, true
}
