package anception

import (
	"container/list"
	"path"
	"sort"
	"sync"
	"time"

	"anception/internal/abi"
	"anception/internal/kernel"
	"anception/internal/sim"
)

// This file implements the host-side redirection cache (DESIGN.md §9): a
// per-remote-descriptor page cache with read-ahead, a write-coalescing
// buffer, and a path-attribute cache for idempotent calls. Cache-hit
// redirected calls are served from host memory at host-call cost and never
// touch the transport; misses amortize the container round-trip across
// read-ahead pages; buffered writes merge adjacent dirty ranges so k
// sequential page writes flush in ~k/N round-trips.
//
// Coherence rules:
//   - write-through-visible: a read on the same descriptor always sees
//     buffered (unflushed) write data overlaid on cached pages;
//   - any non-pread/pwrite call on a descriptor with pending dirty data
//     flushes it first, so the guest stays authoritative for everything
//     the cache does not model (offsets, metadata, truncation);
//   - entries are tagged with the CVM boot generation and the whole cache
//     is invalidated on ReplaceGuest, so a stale page can never be served
//     across a container restart;
//   - degraded (circuit-breaker) mode bypasses the cache entirely — the
//     layer checks the state snapshot before consulting it;
//   - clean pages live under an LRU byte budget; dirty data is bounded by
//     the flush threshold (read-ahead window) and the flush deadline.

// Cache tuning defaults; see Options.
const (
	// DefaultReadAheadPages is the number of pages fetched per read miss
	// in one chunked round-trip.
	DefaultReadAheadPages = 8
	// DefaultCacheBudgetBytes bounds clean cached page data (LRU).
	DefaultCacheBudgetBytes = 4 << 20
	// DefaultCacheFlushDelay is the sim-time deadline after which buffered
	// writes are flushed to the container even without fsync/close.
	DefaultCacheFlushDelay = 5 * time.Millisecond

	// maxAttrEntries bounds the path-attribute cache; the whole attribute
	// map is dropped when it fills (crude, but bounded and rare).
	maxAttrEntries = 1024

	cachePageSize = int64(abi.PageSize)
)

// CacheStats counts redirection-cache activity. Plain value-copy-safe
// integers, surfaced through LayerStats.Cache.
type CacheStats struct {
	// Hits counts calls served entirely from host memory (page reads,
	// buffered writes, attribute hits) with no container round-trip.
	Hits int
	// Misses counts cache consultations that needed the container.
	Misses int
	// ReadAheadPages counts pages fetched beyond the first on read misses.
	ReadAheadPages int
	// CoalescedWrites counts buffered writes merged into an existing
	// dirty range instead of starting a new one.
	CoalescedWrites int
	// Flushes counts write-back round-trips (each may carry many ranges).
	Flushes int
	// Invalidations counts whole-cache wipes (CVM restart) plus targeted
	// per-path/per-descriptor purges.
	Invalidations int
}

type redirCacheConfig struct {
	readAhead  int
	budget     int64
	flushDelay time.Duration
}

// redirCache is the cache state. One mutex guards everything including the
// forwards issued for fetch and flush: fetch/flush round-trips only touch
// the proxy/transport stack, which never re-enters the cache, so holding
// the lock across them is deadlock-free and keeps read-after-write
// coherence windows closed.
type redirCache struct {
	cfg redirCacheConfig

	mu    sync.Mutex
	gen   int
	bytes int64
	// lru orders clean cached pages, most recently used at the front.
	lru   *list.List
	fds   map[*kernel.FDEntry]*fdCache
	attrs map[attrKey]attrEntry
	stats CacheStats
}

// fdCache is the per-remote-descriptor state.
type fdCache struct {
	guestFD int
	path    string
	// owner is the last host task that touched this descriptor through
	// the cache. Forwarded flushes must ride the owner's guest proxy —
	// the guest fd number only resolves in that proxy's table — so a
	// layer-wide flush (migration, explicit sync) writes each
	// descriptor back through its own task rather than the caller's.
	owner *kernel.Task
	// pages maps page index -> *list.Element whose value is *cachedPage.
	pages map[int64]*list.Element
	// dirty holds buffered write extents, sorted by offset, disjoint.
	dirty      []wext
	dirtyBytes int
	dirtySince time.Duration
	// size is the guest-side file size; valid only when sizeValid. It is
	// re-learned (fstat) after any forwarded call that may change it.
	size      int64
	sizeValid bool
}

type cachedPage struct {
	owner *fdCache
	idx   int64
	gen   int
	// data is always a full page, zero-padded past end-of-file.
	data []byte
}

// wext is one buffered write extent.
type wext struct {
	off  int64
	data []byte
}

type attrKey struct {
	nr   abi.SyscallNr
	path string
	// aux disambiguates calls with a scalar argument (access mode).
	aux int
}

type attrEntry struct {
	gen int
	res kernel.Result
}

func newRedirCache(cfg redirCacheConfig, gen int) *redirCache {
	if cfg.readAhead <= 0 {
		cfg.readAhead = DefaultReadAheadPages
	}
	if cfg.budget <= 0 {
		cfg.budget = DefaultCacheBudgetBytes
	}
	if cfg.flushDelay <= 0 {
		cfg.flushDelay = DefaultCacheFlushDelay
	}
	return &redirCache{
		cfg:   cfg,
		gen:   gen,
		lru:   list.New(),
		fds:   make(map[*kernel.FDEntry]*fdCache),
		attrs: make(map[attrKey]attrEntry),
	}
}

// hitMiss reports the hit count and total lookups so far — the cost
// model's cache-worth-it inputs.
func (c *redirCache) hitMiss() (hits, lookups int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return int64(c.stats.Hits), int64(c.stats.Hits + c.stats.Misses)
}

// snapshot returns a copy of the counters.
func (c *redirCache) snapshot() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// invalidateAll wipes every entry and advances to the given boot
// generation. Buffered writes are discarded: a container restart loses
// unflushed data exactly like an OS crash loses its page cache.
func (l *Layer) invalidateRedirCache(gen int) {
	c := l.cache
	if c == nil {
		return
	}
	c.mu.Lock()
	dropped := c.lru.Len()
	for _, fc := range c.fds {
		dropped += len(fc.dirty)
	}
	c.gen = gen
	c.bytes = 0
	c.lru.Init()
	c.fds = make(map[*kernel.FDEntry]*fdCache)
	c.attrs = make(map[attrKey]attrEntry)
	c.stats.Invalidations++
	c.mu.Unlock()
	if l.trace != nil {
		l.trace.Record(sim.EvCache, "redirection cache invalidated (generation %d, %d entries dropped)", gen, dropped)
	}
}

// rekeyRedirCache is invalidateRedirCache's generation-aware sibling for
// snapshot restores. The cache mirrors the host-persistent filesystem the
// guest serves — state a restore does NOT rewind — so clean pages and
// attribute entries stay correct and are re-tagged to the new boot
// generation instead of dropped; the fdCache map is keyed by host
// *kernel.FDEntry, which survives the swap, and a stale fc.guestFD
// surfaces EBADF on next forwarded use exactly like after a cold restart.
// Buffered dirty extents were never written to the guest and die with it
// (crash semantics), taking the descriptor's size knowledge with them.
// Returns (pagesKept, attrsKept, dirtyDropped).
func (l *Layer) rekeyRedirCache(gen int) (pagesKept, attrsKept, dirtyDropped int) {
	c := l.cache
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	oldGen := c.gen
	c.gen = gen
	for _, fc := range c.fds {
		if len(fc.dirty) > 0 {
			dirtyDropped += len(fc.dirty)
			fc.dirty = nil
			fc.dirtyBytes = 0
			fc.dirtySince = 0
			fc.sizeValid = false
		}
		for idx, el := range fc.pages {
			cp := el.Value.(*cachedPage)
			if cp.gen == oldGen {
				cp.gen = gen
				pagesKept++
				continue
			}
			c.lru.Remove(el)
			c.bytes -= cachePageSize
			delete(fc.pages, idx)
		}
	}
	for k, ent := range c.attrs {
		if ent.gen == oldGen {
			ent.gen = gen
			c.attrs[k] = ent
			attrsKept++
			continue
		}
		delete(c.attrs, k)
	}
	c.stats.Invalidations++
	c.mu.Unlock()
	if l.trace != nil {
		l.trace.Record(sim.EvCache,
			"redirection cache rekeyed to generation %d: %d pages and %d attrs kept, %d dirty extents dropped",
			gen, pagesKept, attrsKept, dirtyDropped)
	}
	return pagesKept, attrsKept, dirtyDropped
}

// fdLocked returns (creating if needed) the per-descriptor state,
// refreshing the owning task.
func (c *redirCache) fdLocked(e *kernel.FDEntry, t *kernel.Task) *fdCache {
	if fc, ok := c.fds[e]; ok {
		fc.owner = t
		return fc
	}
	fc := &fdCache{
		guestFD: e.GuestFD,
		path:    e.Path,
		owner:   t,
		pages:   make(map[int64]*list.Element),
	}
	c.fds[e] = fc
	return fc
}

// dropFDLocked removes a descriptor's clean pages and forgets it. Dirty
// data must have been flushed (or deliberately discarded) by the caller.
func (c *redirCache) dropFDLocked(e *kernel.FDEntry) {
	fc, ok := c.fds[e]
	if !ok {
		return
	}
	for _, el := range fc.pages {
		c.lru.Remove(el)
		c.bytes -= cachePageSize
	}
	delete(c.fds, e)
}

// dropPagesLocked discards a descriptor's clean pages and size knowledge,
// after a forwarded call that may have changed the file under the cache.
func (c *redirCache) dropPagesLocked(fc *fdCache) {
	for idx, el := range fc.pages {
		c.lru.Remove(el)
		c.bytes -= cachePageSize
		delete(fc.pages, idx)
	}
	fc.sizeValid = false
}

// purgeAttrLocked removes attribute entries for a path and its parent
// directory (a create/unlink changes the parent's getdents listing).
func (c *redirCache) purgeAttrLocked(p string) {
	if p == "" {
		return
	}
	parent := path.Dir(p)
	for k := range c.attrs {
		if k.path == p || k.path == parent {
			delete(c.attrs, k)
		}
	}
}

// --- dirty-extent bookkeeping -------------------------------------------

func (f *fdCache) maxDirtyEnd() int64 {
	if len(f.dirty) == 0 {
		return 0
	}
	last := f.dirty[len(f.dirty)-1]
	return last.off + int64(len(last.data))
}

// dirtyCovers reports whether [a, b) is fully covered by buffered extents.
func (f *fdCache) dirtyCovers(a, b int64) bool {
	if a >= b {
		return true
	}
	cur := a
	for _, ext := range f.dirty {
		end := ext.off + int64(len(ext.data))
		if end <= cur {
			continue
		}
		if ext.off > cur {
			return false
		}
		cur = end
		if cur >= b {
			return true
		}
	}
	return cur >= b
}

// addDirty buffers one write, merging it with any overlapping or adjacent
// extents. Reports whether it coalesced into existing dirty data.
func (f *fdCache) addDirty(off int64, data []byte) bool {
	buf := make([]byte, len(data))
	copy(buf, data)
	ext := wext{off: off, data: buf}
	end := off + int64(len(buf))

	merged := false
	out := f.dirty[:0]
	for _, old := range f.dirty {
		oldEnd := old.off + int64(len(old.data))
		if oldEnd < ext.off || old.off > end {
			out = append(out, old)
			continue
		}
		// Overlapping or adjacent: merge old into ext, new data wins.
		merged = true
		lo := ext.off
		if old.off < lo {
			lo = old.off
		}
		hi := end
		if oldEnd > hi {
			hi = oldEnd
		}
		joined := make([]byte, hi-lo)
		copy(joined[old.off-lo:], old.data)
		copy(joined[ext.off-lo:], ext.data)
		ext = wext{off: lo, data: joined}
		end = hi
	}
	out = append(out, ext)
	sort.Slice(out, func(i, j int) bool { return out[i].off < out[j].off })
	f.dirty = out
	f.dirtyBytes = 0
	for _, e := range f.dirty {
		f.dirtyBytes += len(e.data)
	}
	return merged
}

// --- layer entry points --------------------------------------------------

// cacheBypassed reports whether the cache must not be consulted for this
// snapshot: absent, or degraded (fail-fast) mode is active.
func (l *Layer) cacheBypassed(st *layerState) bool {
	return l.cache == nil || st.degraded
}

// cachedFDCall intercepts descriptor calls on a remote fd when the cache
// is enabled. It either serves the call (handled=true) or performs the
// coherence flush and lets the caller forward normally (handled=false).
// The cache-vs-passthrough decision is the policy's: static
// configurations always serve; under AutoTune a collapsed hit rate (or
// a forced-sync override) routes around the cache, and the coherence
// flush below still runs so buffered data reaches the guest before the
// forwarded call.
func (l *Layer) cachedFDCall(st *layerState, t *kernel.Task, e *kernel.FDEntry, args *kernel.Args) (kernel.Result, bool) {
	c := l.cache
	switch args.Nr {
	case abi.SysPread64:
		if l.serveFromCache(c) {
			return l.cachedPread(st, t, e, args)
		}
	case abi.SysPwrite64:
		if l.serveFromCache(c) {
			return l.cachedPwrite(st, t, e, args)
		}
	}
	// Coherence rule: every call not served above sees the guest's view,
	// so any buffered data for this descriptor is written back first. No
	// entry is created here — sockets and such never get one.
	c.mu.Lock()
	var res kernel.Result
	var failed bool
	if fc, ok := c.fds[e]; ok {
		res, failed = l.flushLocked(st, t, fc)
	}
	c.mu.Unlock()
	if failed && !res.Ok() {
		return res, true
	}
	return kernel.Result{}, false
}

// serveFromCache asks the policy whether this call should be served
// from the cache, feeding it the observed hit rate.
func (l *Layer) serveFromCache(c *redirCache) bool {
	hits, lookups := c.hitMiss()
	return l.policy.serveCache(hits, lookups)
}

// cachedPread serves a positioned read from host memory, fetching with
// read-ahead on a miss.
func (l *Layer) cachedPread(st *layerState, t *kernel.Task, e *kernel.FDEntry, args *kernel.Args) (kernel.Result, bool) {
	n := len(args.Buf)
	if n == 0 || args.Off < 0 {
		return kernel.Result{}, false
	}
	// Coherence with the zero-copy path: a read overlapping an in-flight
	// granted write must never be served from cached (pre-write) pages.
	// Bypass the cache and forward — per-descriptor FIFO ordering on the
	// transport puts the read behind the write.
	if l.grants != nil && l.grants.overlapsLiveWrite(e.GuestFD, args.Off, int64(n)) {
		l.counters.grantCacheBypass.Add(1)
		return kernel.Result{}, false
	}
	c := l.cache
	c.mu.Lock()
	defer c.mu.Unlock()
	fc := c.fdLocked(e, t)
	l.maybeFlushByDeadlineLocked(st, t, fc)

	if out, ok := fc.composeLocked(c, args.Off, n); ok {
		c.stats.Hits++
		pages := pagesSpanned(args.Off, len(out))
		l.clock.Advance(l.model.CacheLookup + time.Duration(pages)*l.model.CacheHitPerPage)
		copy(args.Buf, out)
		return kernel.Result{Ret: int64(len(out)), Data: out}, true
	}
	c.stats.Misses++
	l.clock.Advance(l.model.CacheLookup)

	// Make the guest authoritative (flush), learn the size if needed,
	// then fetch the span plus read-ahead in one chunked round-trip.
	if res, flushed := l.flushLocked(st, t, fc); flushed && !res.Ok() {
		return res, true
	}
	if !fc.sizeValid {
		if _, ok := l.learnSizeLocked(st, t, fc); !ok {
			// fstat failed (not a regular file, or the container went
			// away mid-call): let the uncached path report the real
			// errno for the original pread.
			return kernel.Result{}, false
		}
	}
	if res, ok := l.fetchLocked(st, t, fc, args.Off, n); !ok {
		return res, true
	}
	if out, ok := fc.composeLocked(c, args.Off, n); ok {
		pages := pagesSpanned(args.Off, len(out))
		l.clock.Advance(time.Duration(pages) * l.model.CacheHitPerPage)
		copy(args.Buf, out)
		return kernel.Result{Ret: int64(len(out)), Data: out}, true
	}
	// Should not happen after a successful fetch; fall back to the
	// uncached path rather than guessing.
	return kernel.Result{}, false
}

// cachedPwrite buffers a positioned write in the coalescing buffer.
func (l *Layer) cachedPwrite(st *layerState, t *kernel.Task, e *kernel.FDEntry, args *kernel.Args) (kernel.Result, bool) {
	n := len(args.Buf)
	if n == 0 || args.Off < 0 {
		return kernel.Result{}, false
	}
	c := l.cache
	c.mu.Lock()
	defer c.mu.Unlock()
	fc := c.fdLocked(e, t)

	if len(fc.dirty) == 0 {
		fc.dirtySince = l.clock.Now()
	}
	if fc.addDirty(args.Off, args.Buf) {
		c.stats.CoalescedWrites++
	}
	c.stats.Hits++
	pages := pagesSpanned(args.Off, n)
	l.clock.Advance(l.model.CacheLookup + time.Duration(pages)*l.model.CacheWriteBufferPerPage)
	// The write changes what stat would report for the backing path.
	c.purgeAttrLocked(fc.path)

	// Flush when the buffer reaches the read-ahead window (k sequential
	// page writes -> ~k/N round-trips) or its deadline passed.
	if int64(fc.dirtyBytes) >= int64(c.cfg.readAhead)*cachePageSize {
		if res, flushed := l.flushLocked(st, t, fc); flushed && !res.Ok() {
			return res, true
		}
	} else {
		l.maybeFlushByDeadlineLocked(st, t, fc)
	}
	return kernel.Result{Ret: int64(n)}, true
}

// composeLocked assembles [off, off+n) from clean pages overlaid with
// dirty extents. ok=false means the range is not fully resident.
func (f *fdCache) composeLocked(c *redirCache, off int64, n int) ([]byte, bool) {
	end := off + int64(n)
	dirtyEnd := f.maxDirtyEnd()
	if !f.sizeValid {
		// Size unknown: only a fully dirty-covered range is servable
		// (its content is independent of what lies beneath).
		if !f.dirtyCovers(off, end) {
			return nil, false
		}
	} else {
		eff := f.size
		if dirtyEnd > eff {
			eff = dirtyEnd
		}
		if off >= eff {
			return []byte{}, true // read at or past EOF
		}
		if end > eff {
			end = eff
		}
		for idx := off / cachePageSize; idx <= (end-1)/cachePageSize; idx++ {
			a, b := spanWithin(idx, off, end)
			if el, ok := f.pages[idx]; ok && el.Value.(*cachedPage).gen == c.gen {
				continue
			}
			// Bytes at/past the guest file size are holes (zeros) unless
			// dirty; bytes below it must be buffered to be served.
			needed := b
			if needed > f.size {
				needed = f.size
			}
			if !f.dirtyCovers(a, needed) {
				return nil, false
			}
		}
	}

	out := make([]byte, end-off)
	for idx := off / cachePageSize; idx <= (end-1)/cachePageSize; idx++ {
		if el, ok := f.pages[idx]; ok {
			cp := el.Value.(*cachedPage)
			if cp.gen != c.gen {
				continue
			}
			a, b := spanWithin(idx, off, end)
			pStart := idx * cachePageSize
			copy(out[a-off:b-off], cp.data[a-pStart:b-pStart])
			c.lru.MoveToFront(el)
		}
	}
	for _, ext := range f.dirty {
		a, b := ext.off, ext.off+int64(len(ext.data))
		if a < off {
			a = off
		}
		if b > end {
			b = end
		}
		if a < b {
			copy(out[a-off:b-off], ext.data[a-ext.off:b-ext.off])
		}
	}
	return out, true
}

// spanWithin clips [off, end) to page idx.
func spanWithin(idx, off, end int64) (int64, int64) {
	a := idx * cachePageSize
	b := a + cachePageSize
	if a < off {
		a = off
	}
	if b > end {
		b = end
	}
	return a, b
}

// learnSizeLocked fstats the guest descriptor to establish the exact file
// size. ok=false carries the error result.
func (l *Layer) learnSizeLocked(st *layerState, t *kernel.Task, fc *fdCache) (kernel.Result, bool) {
	res := l.forwardOn(st, t, &kernel.Args{Nr: abi.SysFstat, FD: fc.guestFD})
	if !res.Ok() {
		return res, false
	}
	fc.size = res.Ret
	fc.sizeValid = true
	return res, true
}

// fetchLocked pulls the pages covering [off, off+n) — widened to the
// read-ahead window — from the container in one chunked round-trip.
func (l *Layer) fetchLocked(st *layerState, t *kernel.Task, fc *fdCache, off int64, n int) (kernel.Result, bool) {
	c := l.cache
	first := off / cachePageSize
	want := int64(pagesSpanned(off, n))
	if want < int64(c.cfg.readAhead) {
		want = int64(c.cfg.readAhead)
	}
	fetchOff := first * cachePageSize
	size := want * cachePageSize
	// Never read past the known end of file.
	if fc.sizeValid && fetchOff+size > fc.size {
		size = fc.size - fetchOff
		if size <= 0 {
			return kernel.Result{}, true // nothing below EOF to fetch
		}
	}
	res := l.forwardOn(st, t, &kernel.Args{Nr: abi.SysPread64, FD: fc.guestFD, Size: int(size), Off: fetchOff})
	if !res.Ok() {
		return res, false
	}
	got := res.Data
	if int64(len(got)) < size {
		// Short read: the file ends here.
		fc.size = fetchOff + int64(len(got))
		fc.sizeValid = true
	}
	for pOff := int64(0); pOff < int64(len(got)); pOff += cachePageSize {
		idx := (fetchOff + pOff) / cachePageSize
		data := make([]byte, cachePageSize)
		copy(data, got[pOff:])
		c.storePageLocked(fc, idx, data)
	}
	fetched := pagesSpanned(fetchOff, len(got))
	if extra := fetched - pagesSpanned(off, n); extra > 0 {
		c.stats.ReadAheadPages += extra
	}
	if l.trace != nil {
		l.trace.Record(sim.EvCache, "read-ahead: fetched %d pages of guest fd %d at offset %d", fetched, fc.guestFD, fetchOff)
	}
	return res, true
}

// storePageLocked installs a clean page, evicting LRU pages over budget.
func (c *redirCache) storePageLocked(fc *fdCache, idx int64, data []byte) {
	if el, ok := fc.pages[idx]; ok {
		cp := el.Value.(*cachedPage)
		cp.data = data
		cp.gen = c.gen
		c.lru.MoveToFront(el)
		return
	}
	cp := &cachedPage{owner: fc, idx: idx, gen: c.gen, data: data}
	fc.pages[idx] = c.lru.PushFront(cp)
	c.bytes += cachePageSize
	for c.bytes > c.cfg.budget && c.lru.Len() > 0 {
		victim := c.lru.Back()
		vp := victim.Value.(*cachedPage)
		c.lru.Remove(victim)
		delete(vp.owner.pages, vp.idx)
		c.bytes -= cachePageSize
	}
}

// maybeFlushByDeadlineLocked flushes a descriptor whose oldest buffered
// write has exceeded the flush deadline.
func (l *Layer) maybeFlushByDeadlineLocked(st *layerState, t *kernel.Task, fc *fdCache) {
	if len(fc.dirty) == 0 {
		return
	}
	if l.clock.Now()-fc.dirtySince < l.cache.cfg.flushDelay {
		return
	}
	l.flushLocked(st, t, fc)
}

// flushLocked writes every buffered extent back to the container —
// batched into a single round-trip when there is more than one — then
// folds the data into the clean page cache. flushed=false means there was
// nothing to do.
func (l *Layer) flushLocked(st *layerState, t *kernel.Task, fc *fdCache) (kernel.Result, bool) {
	c := l.cache
	if len(fc.dirty) == 0 {
		return kernel.Result{}, false
	}
	extents := fc.dirty
	// The buffer empties regardless of outcome: like kernel writeback, a
	// failed flush surfaces its error once and does not retry forever.
	fc.dirty = nil
	fc.dirtyBytes = 0
	fc.dirtySince = 0

	calls := make([]*kernel.Args, len(extents))
	for i, ext := range extents {
		calls[i] = &kernel.Args{Nr: abi.SysPwrite64, FD: fc.guestFD, Buf: ext.data, Off: ext.off}
	}
	var results []kernel.Result
	if len(calls) == 1 {
		results = []kernel.Result{l.forwardOn(st, t, calls[0])}
	} else {
		var err error
		results, err = l.forwardBatch(st, t, calls)
		if err != nil {
			return kernel.Result{Ret: -1, Err: err}, true
		}
	}
	c.stats.Flushes++
	// Fold each extent that DID land into the clean page cache (full
	// pages installed, partial edges patching resident pages) even when a
	// later call in the batch failed: the container applied those writes,
	// so dropping them here would let subsequent cached reads serve stale
	// pre-flush data. The first failure is still reported to the caller.
	var failRes kernel.Result
	failed := false
	for i, res := range results {
		if !res.Ok() {
			if !failed {
				failRes, failed = res, true
			}
			continue
		}
		end := extents[i].off + int64(len(extents[i].data))
		if fc.sizeValid && end > fc.size {
			fc.size = end
		}
		l.foldExtentLocked(fc, extents[i])
	}
	c.purgeAttrLocked(fc.path)
	if l.trace != nil {
		l.trace.Record(sim.EvCache, "flush: wrote %d coalesced extents (%d bytes) to guest fd %d",
			len(extents), extentBytes(extents), fc.guestFD)
	}
	if failed {
		return failRes, true
	}
	return kernel.Result{}, false
}

// foldExtentLocked merges one flushed extent into the clean page cache.
func (l *Layer) foldExtentLocked(fc *fdCache, ext wext) {
	c := l.cache
	end := ext.off + int64(len(ext.data))
	for idx := ext.off / cachePageSize; idx <= (end-1)/cachePageSize; idx++ {
		pStart := idx * cachePageSize
		a, b := spanWithin(idx, ext.off, end)
		if a == pStart && b == pStart+cachePageSize {
			data := make([]byte, cachePageSize)
			copy(data, ext.data[a-ext.off:])
			c.storePageLocked(fc, idx, data)
			continue
		}
		if el, ok := fc.pages[idx]; ok {
			cp := el.Value.(*cachedPage)
			copy(cp.data[a-pStart:b-pStart], ext.data[a-ext.off:b-ext.off])
			cp.gen = c.gen
			c.lru.MoveToFront(el)
		}
	}
}

func extentBytes(extents []wext) int {
	n := 0
	for _, e := range extents {
		n += len(e.data)
	}
	return n
}

// flushFDFor writes back buffered data for one descriptor (close, dup,
// fsync and explicit-sync paths). Returns the flush error result, if any.
func (l *Layer) flushFDFor(st *layerState, t *kernel.Task, e *kernel.FDEntry) (kernel.Result, bool) {
	c := l.cache
	if c == nil {
		return kernel.Result{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	fc, ok := c.fds[e]
	if !ok {
		return kernel.Result{}, false
	}
	res, flushed := l.flushLocked(st, t, fc)
	if flushed && !res.Ok() {
		return res, true
	}
	return kernel.Result{}, false
}

// forgetFD drops all cache state for a closed descriptor.
func (l *Layer) forgetFD(e *kernel.FDEntry) {
	c := l.cache
	if c == nil {
		return
	}
	c.mu.Lock()
	c.dropFDLocked(e)
	c.mu.Unlock()
}

// noteForwardedFDOp records that an uncached call was forwarded on a
// cached descriptor; calls that can change file content or size under the
// cache drop its clean pages.
func (l *Layer) noteForwardedFDOp(e *kernel.FDEntry, nr abi.SyscallNr) {
	c := l.cache
	if c == nil {
		return
	}
	switch nr {
	case abi.SysWrite, abi.SysFtruncate, abi.SysPwrite64, abi.SysWritev, abi.SysPwritev:
		// Pwrite64 lands here only when the policy routed it around the
		// cache; the vectored writes always forward. Either way the file
		// changed beneath any clean pages.
		c.mu.Lock()
		if fc, ok := c.fds[e]; ok {
			c.dropPagesLocked(fc)
			c.purgeAttrLocked(fc.path)
			c.stats.Invalidations++
		}
		c.mu.Unlock()
	}
}

// noteGuestFDWrite invalidates clean pages of every descriptor bound to a
// guest fd that was written outside the cache (msync write-back).
func (l *Layer) noteGuestFDWrite(guestFD int) {
	c := l.cache
	if c == nil {
		return
	}
	c.mu.Lock()
	for _, fc := range c.fds {
		if fc.guestFD == guestFD {
			c.dropPagesLocked(fc)
			c.stats.Invalidations++
		}
	}
	c.mu.Unlock()
}

// --- path-attribute cache ------------------------------------------------

// attrCacheable reports idempotent redirect-class path calls.
func attrCacheable(nr abi.SyscallNr) bool {
	switch nr {
	case abi.SysStat, abi.SysAccess, abi.SysReadlink, abi.SysGetdents:
		return true
	default:
		return false
	}
}

// attrMutates reports path calls that must purge attribute entries (and
// flush/invalidate page caches of the affected path).
func attrMutates(nr abi.SyscallNr) bool {
	switch nr {
	case abi.SysMkdir, abi.SysMkdirat, abi.SysRmdir, abi.SysUnlink,
		abi.SysChmod, abi.SysChown, abi.SysTruncate, abi.SysMknod,
		abi.SysRename, abi.SysLink, abi.SysSymlink:
		return true
	default:
		return false
	}
}

// cachedPathCall serves idempotent path calls from the attribute cache and
// keeps it coherent around mutating ones. handled=false means the caller
// must forward; it then reports the outcome via notePathResult.
func (l *Layer) cachedPathCall(st *layerState, t *kernel.Task, args *kernel.Args, p string) (kernel.Result, bool) {
	c := l.cache
	// A forced-sync override pins the uncached path: no attribute is
	// served or charged for. Nothing was cached under the override
	// either (notePathResult is gated the same way), so the skipped
	// mutating-call flush below has nothing to write back.
	if l.policy.forceSync() {
		return kernel.Result{}, false
	}
	if !attrCacheable(args.Nr) {
		if attrMutates(args.Nr) {
			// Content-changing path ops write back any buffered data for
			// descriptors open on this path before the guest acts on it.
			c.mu.Lock()
			for _, fc := range c.fds {
				if fc.path == p || (args.Path2 != "" && fc.path == args.Path2) {
					l.flushLocked(st, t, fc)
					c.dropPagesLocked(fc)
				}
			}
			c.mu.Unlock()
		}
		return kernel.Result{}, false
	}
	key := attrKey{nr: args.Nr, path: p, aux: args.Size}
	c.mu.Lock()
	// Buffered writes on descriptors open on this path change what stat
	// (and friends) report: write them back before answering from either
	// the attribute cache or the guest. Flushing purges this path's
	// attribute entries, so a stale size can never be served below.
	for _, fc := range c.fds {
		if fc.path == p && len(fc.dirty) > 0 {
			l.flushLocked(st, t, fc)
		}
	}
	ent, ok := c.attrs[key]
	if ok && ent.gen == c.gen {
		c.stats.Hits++
		c.mu.Unlock()
		l.clock.Advance(l.model.CacheLookup)
		res := ent.res
		if len(res.Data) > 0 {
			res.Data = append([]byte(nil), res.Data...)
		}
		return res, true
	}
	c.stats.Misses++
	c.mu.Unlock()
	l.clock.Advance(l.model.CacheLookup)
	return kernel.Result{}, false
}

// notePathResult caches a successful idempotent result or purges entries
// invalidated by a mutating path call.
func (l *Layer) notePathResult(args *kernel.Args, p string, res kernel.Result) {
	c := l.cache
	if c == nil || l.policy.forceSync() {
		return
	}
	if attrCacheable(args.Nr) {
		if !res.Ok() {
			return
		}
		c.mu.Lock()
		if len(c.attrs) >= maxAttrEntries {
			c.attrs = make(map[attrKey]attrEntry)
		}
		stored := res
		if len(stored.Data) > 0 {
			stored.Data = append([]byte(nil), stored.Data...)
		}
		c.attrs[attrKey{nr: args.Nr, path: p, aux: args.Size}] = attrEntry{gen: c.gen, res: stored}
		c.mu.Unlock()
		return
	}
	if attrMutates(args.Nr) {
		c.mu.Lock()
		c.purgeAttrLocked(p)
		if args.Path2 != "" {
			c.purgeAttrLocked(args.Path2)
		}
		c.stats.Invalidations++
		c.mu.Unlock()
	}
}

// noteRemoteOpen keeps the cache coherent after a forwarded open: O_CREAT
// changes the parent listing and stat results; O_TRUNC discards the file
// content, so clean pages — and buffered writes, which the truncate
// happens-after — of every descriptor on the path are dropped.
func (l *Layer) noteRemoteOpen(p string, flags abi.OpenFlag) {
	c := l.cache
	if c == nil || flags&(abi.OCreat|abi.OTrunc) == 0 {
		return
	}
	c.mu.Lock()
	c.purgeAttrLocked(p)
	if flags&abi.OTrunc != 0 {
		for _, fc := range c.fds {
			if fc.path == p {
				fc.dirty = nil
				fc.dirtyBytes = 0
				fc.dirtySince = 0
				c.dropPagesLocked(fc)
			}
		}
		c.stats.Invalidations++
	}
	c.mu.Unlock()
}

// pagesSpanned counts the pages the byte range [off, off+n) touches.
func pagesSpanned(off int64, n int) int {
	if n <= 0 {
		return 0
	}
	first := off / cachePageSize
	last := (off + int64(n) - 1) / cachePageSize
	return int(last - first + 1)
}

// FlushRedirCache writes back every buffered extent (tests, explicit
// sync points, and migration's pre-drain write-back). Each descriptor
// flushes through the task that last touched it — its guest fd only
// resolves in that task's proxy — falling back to t for entries with no
// recorded owner. It is a no-op when the cache is off.
func (l *Layer) FlushRedirCache(t *kernel.Task) error {
	c := l.cache
	if c == nil {
		return nil
	}
	st := l.currentState()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, fc := range c.fds {
		owner := fc.owner
		if owner == nil {
			owner = t
		}
		if res, flushed := l.flushLocked(st, owner, fc); flushed && !res.Ok() {
			return res.Err
		}
	}
	return nil
}

// CacheStatsSnapshot returns the cache counters (zero value when the
// cache is off).
func (l *Layer) CacheStatsSnapshot() CacheStats {
	if l.cache == nil {
		return CacheStats{}
	}
	return l.cache.snapshot()
}
