package anception

import (
	"testing"
	"time"

	"anception/internal/abi"
	"anception/internal/android"
)

// MeasureSyscall runs op once and returns the simulated time it consumed.
func measureOnce(d *Device, op func()) time.Duration {
	before := d.Clock.Now()
	op()
	return d.Clock.Now() - before
}

// within asserts a measurement is inside tol (fractional) of want.
func within(t *testing.T, name string, got, want time.Duration, tol float64) {
	t.Helper()
	lo := time.Duration(float64(want) * (1 - tol))
	hi := time.Duration(float64(want) * (1 + tol))
	if got < lo || got > hi {
		t.Errorf("%s = %v, want %v ± %.0f%%", name, got, want, tol*100)
	}
}

// TestTableINullCall pins the getpid row of Table I: 0.76 us native and
// 0.76 us under Anception (the one-byte ASIM check is in the noise).
func TestTableINullCall(t *testing.T) {
	native := bootDevice(t, ModeNative)
	np := installAndLaunch(t, native, "com.bench")
	within(t, "native getpid", measureOnce(native, func() { np.Getpid() }), 760*time.Nanosecond, 0.01)

	anc := bootDevice(t, ModeAnception)
	ap := installAndLaunch(t, anc, "com.bench")
	within(t, "anception getpid", measureOnce(anc, func() { ap.Getpid() }), 762*time.Nanosecond, 0.01)
}

// TestTableIFilesystemWrite pins the 4096-byte write row: 28.61 us native,
// 384.45 us under Anception.
func TestTableIFilesystemWrite(t *testing.T) {
	page := make([]byte, abi.PageSize)

	native := bootDevice(t, ModeNative)
	np := installAndLaunch(t, native, "com.bench")
	nfd, err := np.Open("bench.dat", abi.OWrOnly|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "native write", measureOnce(native, func() { _, _ = np.Write(nfd, page) }),
		28610*time.Nanosecond, 0.01)

	anc := bootDevice(t, ModeAnception)
	ap := installAndLaunch(t, anc, "com.bench")
	afd, err := ap.Open("bench.dat", abi.OWrOnly|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "anception write", measureOnce(anc, func() { _, _ = ap.Write(afd, page) }),
		384450*time.Nanosecond, 0.03)
}

// TestTableIFilesystemRead pins the 4096-byte read row: 6.51 us native,
// 305.03 us under Anception.
func TestTableIFilesystemRead(t *testing.T) {
	page := make([]byte, abi.PageSize)

	prep := func(d *Device) (*Proc, int) {
		p := installAndLaunch(t, d, "com.bench")
		fd, err := p.Open("bench.dat", abi.ORdWr|abi.OCreat, 0o600)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Write(fd, page); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Lseek(fd, 0, abi.SeekSet); err != nil {
			t.Fatal(err)
		}
		return p, fd
	}

	native := bootDevice(t, ModeNative)
	np, nfd := prep(native)
	within(t, "native read", measureOnce(native, func() { _, _ = np.Read(nfd, abi.PageSize) }),
		6510*time.Nanosecond, 0.01)

	anc := bootDevice(t, ModeAnception)
	ap, afd := prep(anc)
	within(t, "anception read", measureOnce(anc, func() { _, _ = ap.Read(afd, abi.PageSize) }),
		305030*time.Nanosecond, 0.03)
}

// TestTableIBinderIPC pins the binder rows: ~12 ms native; ~31 ms at 128 B
// and ~31.3 ms at 256 B when the service lives in the container.
func TestTableIBinderIPC(t *testing.T) {
	call := func(d *Device, p *Proc, fd int, payload int) time.Duration {
		return measureOnce(d, func() {
			if _, err := p.BinderCall(fd, "location", android.CodeGetLocation, make([]byte, payload)); err != nil {
				t.Fatal(err)
			}
		})
	}

	native := bootDevice(t, ModeNative)
	np := installAndLaunch(t, native, "com.bench")
	nfd, err := np.OpenBinder()
	if err != nil {
		t.Fatal(err)
	}
	within(t, "native binder 128B", call(native, np, nfd, 128), 12*time.Millisecond, 0.01)
	within(t, "native binder 256B", call(native, np, nfd, 256), 12*time.Millisecond, 0.01)

	anc := bootDevice(t, ModeAnception)
	ap := installAndLaunch(t, anc, "com.bench")
	afd, err := ap.OpenBinder()
	if err != nil {
		t.Fatal(err)
	}
	within(t, "anception binder 128B", call(anc, ap, afd, 128), 31*time.Millisecond, 0.01)
	within(t, "anception binder 256B", call(anc, ap, afd, 256), 31300*time.Microsecond, 0.01)
}

// TestRedirectOverheadShrinksWithA1 verifies the A1 ablation: keeping
// filesystem I/O on the host removes the redirection penalty at the cost
// of a larger privileged base.
func TestRedirectOverheadShrinksWithA1(t *testing.T) {
	d, err := NewDevice(Options{Mode: ModeAnception, KeepFSOnHost: true})
	if err != nil {
		t.Fatal(err)
	}
	app, err := d.InstallApp(android.AppSpec{Package: "com.a1"})
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.Launch(app)
	if err != nil {
		t.Fatal(err)
	}
	fd, err := p.Open("f", abi.OWrOnly|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	cost := measureOnce(d, func() { _, _ = p.Write(fd, make([]byte, abi.PageSize)) })
	within(t, "A1 host-fs write", cost, 28610*time.Nanosecond, 0.01)
	if d.Layer.Stats().Redirected != 0 {
		t.Fatalf("A1 still redirected %d calls", d.Layer.Stats().Redirected)
	}
}

// TestNaiveDispatchCostsMore verifies ablation A3 end to end.
func TestNaiveDispatchCostsMore(t *testing.T) {
	measureWrite := func(naive bool) time.Duration {
		d, err := NewDevice(Options{Mode: ModeAnception, NaiveDispatch: naive})
		if err != nil {
			t.Fatal(err)
		}
		app, err := d.InstallApp(android.AppSpec{Package: "com.a3"})
		if err != nil {
			t.Fatal(err)
		}
		p, err := d.Launch(app)
		if err != nil {
			t.Fatal(err)
		}
		fd, err := p.Open("f", abi.OWrOnly|abi.OCreat, 0o600)
		if err != nil {
			t.Fatal(err)
		}
		return measureOnce(d, func() { _, _ = p.Write(fd, make([]byte, abi.PageSize)) })
	}
	fast, slow := measureWrite(false), measureWrite(true)
	if slow <= fast {
		t.Fatalf("naive dispatch (%v) should cost more than the in-kernel wait (%v)", slow, fast)
	}
	if diff := slow - fast; diff != 4*simGuestContextSwitch(t) {
		t.Fatalf("penalty = %v, want 4 guest context switches", diff)
	}
}

func simGuestContextSwitch(t *testing.T) time.Duration {
	t.Helper()
	d, err := NewDevice(Options{Mode: ModeNative})
	if err != nil {
		t.Fatal(err)
	}
	return d.Model.GuestContextSwitch
}

// TestSocketTransportAblation verifies A5 end to end: the socket-style
// channel makes bulk redirected writes slower.
func TestSocketTransportAblation(t *testing.T) {
	measureWrite := func(socketTransport bool) time.Duration {
		d, err := NewDevice(Options{Mode: ModeAnception, SocketTransport: socketTransport})
		if err != nil {
			t.Fatal(err)
		}
		app, err := d.InstallApp(android.AppSpec{Package: "com.a5"})
		if err != nil {
			t.Fatal(err)
		}
		p, err := d.Launch(app)
		if err != nil {
			t.Fatal(err)
		}
		fd, err := p.Open("f", abi.OWrOnly|abi.OCreat, 0o600)
		if err != nil {
			t.Fatal(err)
		}
		return measureOnce(d, func() { _, _ = p.Write(fd, make([]byte, 16*abi.PageSize)) })
	}
	pages, socket := measureWrite(false), measureWrite(true)
	if socket <= pages {
		t.Fatalf("socket transport (%v) should be slower than remapped pages (%v)", socket, pages)
	}
}
