// Package netstack implements the simulated network stack: INET stream and
// datagram sockets (loopback plus scripted remote endpoints), Unix domain
// sockets, and netlink channels used by Android's privileged daemons.
//
// The stack also carries the *vulnerability surface* of the kernel network
// code that Section V studies: socket families can be flagged with known
// historical bugs (e.g. the NULL proto_ops sendpage of CVE-2009-2692) that
// the kernel layer consults when executing calls.
package netstack

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"anception/internal/abi"
)

// Family is a socket address family.
type Family int

// Address families used by the simulation.
const (
	AFInet Family = iota + 1
	AFUnix
	AFNetlink
	AFBluetooth
)

// String names the family as in <sys/socket.h>.
func (f Family) String() string {
	switch f {
	case AFInet:
		return "AF_INET"
	case AFUnix:
		return "AF_UNIX"
	case AFNetlink:
		return "AF_NETLINK"
	case AFBluetooth:
		return "PF_BLUETOOTH"
	default:
		return fmt.Sprintf("AF(%d)", int(f))
	}
}

// SockType distinguishes stream and datagram sockets.
type SockType int

// Socket types.
const (
	SockStream SockType = iota + 1
	SockDgram
)

// String names the type.
func (t SockType) String() string {
	if t == SockStream {
		return "SOCK_STREAM"
	}
	return "SOCK_DGRAM"
}

// Cred mirrors vfs.Cred for the network layer.
type Cred = abi.Cred

// RemoteHandler simulates a remote server (e.g. the bank backend): it
// receives request bytes and returns response bytes.
type RemoteHandler func(req []byte) []byte

// NetlinkReceiver is the daemon-side handler of a netlink protocol. It
// receives the sender's credentials and the message; vold's GingerBreak bug
// lives behind one of these.
type NetlinkReceiver func(sender Cred, msg []byte) error

// VulnFlag marks a historical kernel bug present in the simulated stack.
type VulnFlag int

// Known stack vulnerabilities.
const (
	// VulnNullSendpage models CVE-2009-2692: the proto_ops of certain
	// socket families left sendpage NULL, so sendfile() on such a socket
	// makes the kernel jump through a NULL function pointer — i.e. to
	// whatever the attacker mapped at virtual page zero.
	VulnNullSendpage VulnFlag = iota + 1
)

// State tracks the lifecycle of a socket.
type State int

// Socket states.
const (
	StateNew State = iota + 1
	StateBound
	StateListening
	StateConnected
	StateClosed
)

// DefaultRcvBudget is the SO_RCVBUF-style byte budget of a socket's
// receive queue. An open-loop sender used to grow recvq without limit;
// now a full stream queue pushes EAGAIN back at the sender and a full
// datagram queue drops (counted), like a real kernel.
const DefaultRcvBudget = 256 << 10

// Socket is one endpoint.
type Socket struct {
	stack  *Stack
	Family Family
	Type   SockType
	Proto  int

	mu        sync.Mutex
	state     State
	localAddr string
	peerAddr  string
	peer      *Socket
	remote    RemoteHandler
	recvq     [][]byte
	rcvBytes  int
	rcvBudget int
	backlog   []*Socket
	vulns     map[VulnFlag]bool
	owner     Cred

	// policyGen records the stack generation whose ConnectPolicy vetted
	// this socket's outbound connect; policyChecked marks sockets that
	// went through Connect (server-side accept halves are exempt). When
	// the stack generation rolls (CVM restart), the next Send/Recv
	// re-runs the then-current policy so a firewall swapped in by the
	// supervisor applies to resurrected sockets too.
	policyGen     uint64
	policyChecked bool
}

// ConnectPolicy may veto outbound connections. The host installs one on
// the CVM's stack to firewall the container's external connectivity
// ("the CVM's external connectivity can be controlled from the host by
// firewall rules", Section III-D).
type ConnectPolicy func(cred Cred, addr string) error

// Stack is one kernel's network stack.
type Stack struct {
	mu        sync.Mutex
	name      string
	remotes   map[string]RemoteHandler
	listeners map[string]*Socket
	unixNames map[string]*Socket
	netlinks  map[int]netlinkEntry
	vulnByKey map[string]VulnFlag
	policy    ConnectPolicy

	// defaultBudget overrides DefaultRcvBudget for new sockets when > 0
	// (the Options.SockRcvBudget knob).
	defaultBudget int

	// generation is the CVM boot generation this stack is serving;
	// rolling it invalidates every socket's connect-time policy check.
	generation atomic.Uint64
	// dgramDrops counts datagrams dropped because the receiver's budget
	// was full.
	dgramDrops atomic.Int64
}

type netlinkEntry struct {
	receiver NetlinkReceiver
	// worldSendable models the GingerBreak misconfiguration: the channel
	// accepts messages from any UID instead of only root/system.
	worldSendable bool
}

// New returns an empty stack labeled with the owning kernel's name.
func New(name string) *Stack {
	return &Stack{
		name:      name,
		remotes:   make(map[string]RemoteHandler),
		listeners: make(map[string]*Socket),
		unixNames: make(map[string]*Socket),
		netlinks:  make(map[int]netlinkEntry),
		vulnByKey: make(map[string]VulnFlag),
	}
}

// Name returns the stack's label ("host" or "cvm").
func (s *Stack) Name() string { return s.name }

// RegisterRemote installs a scripted remote server reachable at addr
// (host:port form).
func (s *Stack) RegisterRemote(addr string, h RemoteHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.remotes[addr] = h
}

// RegisterNetlink installs the daemon-side receiver for a netlink protocol
// number. worldSendable re-creates the permission misconfiguration that
// GingerBreak exploited.
func (s *Stack) RegisterNetlink(proto int, recv NetlinkReceiver, worldSendable bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.netlinks[proto] = netlinkEntry{receiver: recv, worldSendable: worldSendable}
}

// SetConnectPolicy installs (or clears, with nil) the outbound firewall.
func (s *Stack) SetConnectPolicy(p ConnectPolicy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.policy = p
}

// SetGeneration rolls the stack to a new CVM boot generation. Sockets
// vetted by an older generation's ConnectPolicy re-run the current
// policy on their next Send/Recv.
func (s *Stack) SetGeneration(gen uint64) { s.generation.Store(gen) }

// Generation returns the stack's current boot generation.
func (s *Stack) Generation() uint64 { return s.generation.Load() }

// DgramDrops returns the count of datagrams dropped at full receive
// budgets.
func (s *Stack) DgramDrops() int64 { return s.dgramDrops.Load() }

// SetDefaultRcvBudget sets the receive budget new sockets start with
// (<= 0 restores DefaultRcvBudget). Existing sockets are unaffected.
func (s *Stack) SetDefaultRcvBudget(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.defaultBudget = n
}

func (s *Stack) rcvBudgetDefault() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.defaultBudget > 0 {
		return s.defaultBudget
	}
	return DefaultRcvBudget
}

// IsRemote reports whether addr names a scripted remote endpoint (as
// opposed to a loopback listener or unix name). The kernel charges the
// wide-area NetworkRTT only for these.
func (s *Stack) IsRemote(addr string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.remotes[addr]
	return ok
}

// NetlinkProtocols lists the registered netlink protocol numbers in
// ascending order; the kernel synthesizes /proc/net/netlink from it.
func (s *Stack) NetlinkProtocols() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.netlinks))
	for proto := range s.netlinks {
		out = append(out, proto)
	}
	sort.Ints(out)
	return out
}

// InjectVulnerability marks sockets of the given family/type as carrying a
// historical kernel bug.
func (s *Stack) InjectVulnerability(f Family, t SockType, v VulnFlag) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vulnByKey[vulnKey(f, t)] = v
}

func vulnKey(f Family, t SockType) string { return fmt.Sprintf("%d/%d", f, t) }

// Socket creates a new socket owned by cred.
func (s *Stack) Socket(cred Cred, f Family, t SockType, proto int) (*Socket, error) {
	if f == 0 || t == 0 {
		return nil, abi.EINVAL
	}
	sock := &Socket{
		stack:     s,
		Family:    f,
		Type:      t,
		Proto:     proto,
		state:     StateNew,
		rcvBudget: s.rcvBudgetDefault(),
		vulns:     make(map[VulnFlag]bool),
		owner:     cred,
	}
	s.mu.Lock()
	if v, ok := s.vulnByKey[vulnKey(f, t)]; ok {
		sock.vulns[v] = true
	}
	s.mu.Unlock()
	return sock, nil
}

// HasVulnerability reports whether the socket carries a flagged kernel bug.
func (sk *Socket) HasVulnerability(v VulnFlag) bool {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	return sk.vulns[v]
}

// Owner returns the creating credentials.
func (sk *Socket) Owner() Cred { return sk.owner }

// SetRcvBuf adjusts the receive-queue byte budget (SO_RCVBUF). A
// non-positive size restores the default.
func (sk *Socket) SetRcvBuf(n int) {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	if n <= 0 {
		n = DefaultRcvBudget
	}
	sk.rcvBudget = n
}

// State returns the socket state.
func (sk *Socket) State() State {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	return sk.state
}

// Bind attaches a local address: "host:port" for INET, a filesystem-style
// name for Unix sockets, or the protocol number (ignored address) for
// netlink.
func (sk *Socket) Bind(addr string) error {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	if sk.state != StateNew {
		return abi.EINVAL
	}
	s := sk.stack
	s.mu.Lock()
	defer s.mu.Unlock()
	switch sk.Family {
	case AFInet:
		if _, taken := s.listeners[addr]; taken {
			return abi.EADDRINUSE
		}
	case AFUnix:
		if _, taken := s.unixNames[addr]; taken {
			return abi.EADDRINUSE
		}
		s.unixNames[addr] = sk
	}
	sk.localAddr = addr
	sk.state = StateBound
	return nil
}

// Listen marks a bound stream socket as accepting connections.
func (sk *Socket) Listen() error {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	if sk.Type != SockStream {
		return abi.EOPNOTSUPP
	}
	if sk.state != StateBound {
		return abi.EINVAL
	}
	sk.state = StateListening
	s := sk.stack
	s.mu.Lock()
	if sk.Family == AFInet {
		s.listeners[sk.localAddr] = sk
	}
	s.mu.Unlock()
	return nil
}

// Accept dequeues one pending connection; EAGAIN if none is waiting (the
// simulation is event-driven, not blocking).
func (sk *Socket) Accept() (*Socket, error) {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	if sk.state != StateListening {
		return nil, abi.EINVAL
	}
	if len(sk.backlog) == 0 {
		return nil, abi.EAGAIN
	}
	conn := sk.backlog[0]
	sk.backlog = sk.backlog[1:]
	return conn, nil
}

// AcceptBatch dequeues up to max pending connections in one call — the
// netstack half of batched accept4, where one ring completion carries N
// accepted connections. EAGAIN when the backlog is empty; max <= 0 means
// "all of them".
func (sk *Socket) AcceptBatch(max int) ([]*Socket, error) {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	if sk.state != StateListening {
		return nil, abi.EINVAL
	}
	if len(sk.backlog) == 0 {
		return nil, abi.EAGAIN
	}
	n := len(sk.backlog)
	if max > 0 && max < n {
		n = max
	}
	conns := make([]*Socket, n)
	copy(conns, sk.backlog)
	sk.backlog = sk.backlog[n:]
	return conns, nil
}

// Backlog reports the number of connections waiting to be accepted.
func (sk *Socket) Backlog() int {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	return len(sk.backlog)
}

// Connect attaches the socket to a remote address: a scripted remote, a
// local listener, or a bound unix socket.
func (sk *Socket) Connect(addr string) error {
	sk.mu.Lock()
	if sk.state == StateConnected {
		sk.mu.Unlock()
		return abi.EINVAL
	}
	sk.mu.Unlock()

	s := sk.stack
	s.mu.Lock()
	policy := s.policy
	s.mu.Unlock()
	if policy != nil {
		if err := policy(sk.owner, addr); err != nil {
			return err
		}
	}
	s.mu.Lock()
	remote, isRemote := s.remotes[addr]
	var listener *Socket
	var unixPeer *Socket
	switch sk.Family {
	case AFInet:
		listener = s.listeners[addr]
	case AFUnix:
		unixPeer = s.unixNames[addr]
	}
	s.mu.Unlock()

	gen := s.generation.Load()
	switch {
	case isRemote:
		sk.mu.Lock()
		sk.remote = remote
		sk.peerAddr = addr
		sk.state = StateConnected
		sk.policyGen, sk.policyChecked = gen, true
		sk.mu.Unlock()
		return nil
	case listener != nil:
		serverSide := &Socket{
			stack: s, Family: sk.Family, Type: sk.Type, Proto: sk.Proto,
			state: StateConnected, peerAddr: "client", vulns: map[VulnFlag]bool{},
			owner: listener.owner, rcvBudget: s.rcvBudgetDefault(),
		}
		sk.mu.Lock()
		sk.peer = serverSide
		sk.peerAddr = addr
		sk.state = StateConnected
		sk.policyGen, sk.policyChecked = gen, true
		sk.mu.Unlock()
		serverSide.peer = sk
		listener.mu.Lock()
		listener.backlog = append(listener.backlog, serverSide)
		listener.mu.Unlock()
		return nil
	case unixPeer != nil:
		serverSide := &Socket{
			stack: s, Family: sk.Family, Type: sk.Type, Proto: sk.Proto,
			state: StateConnected, peerAddr: "client", vulns: map[VulnFlag]bool{},
			owner: unixPeer.owner, rcvBudget: s.rcvBudgetDefault(),
		}
		sk.mu.Lock()
		sk.peer = serverSide
		sk.peerAddr = addr
		sk.state = StateConnected
		sk.policyGen, sk.policyChecked = gen, true
		sk.mu.Unlock()
		serverSide.peer = sk
		unixPeer.mu.Lock()
		unixPeer.backlog = append(unixPeer.backlog, serverSide)
		unixPeer.mu.Unlock()
		return nil
	default:
		return abi.ENETUNREACH
	}
}

// recheckPolicy re-runs the stack's ConnectPolicy against a socket whose
// connect-time check predates the current boot generation. A policy the
// supervisor swapped in around a CVM restart thereby applies to sockets
// that survived (or were resurrected across) the restart, not just to
// new connects.
func (sk *Socket) recheckPolicy() error {
	s := sk.stack
	gen := s.generation.Load()
	sk.mu.Lock()
	if !sk.policyChecked || sk.policyGen == gen {
		sk.mu.Unlock()
		return nil
	}
	owner, addr := sk.owner, sk.peerAddr
	sk.mu.Unlock()

	s.mu.Lock()
	policy := s.policy
	s.mu.Unlock()
	if policy != nil {
		if err := policy(owner, addr); err != nil {
			return err
		}
	}
	sk.mu.Lock()
	sk.policyGen = gen
	sk.mu.Unlock()
	return nil
}

// Send transmits data on a connected socket. For scripted remotes the
// response is queued for the next Recv. Peer delivery honors the
// receiver's byte budget: a full stream queue pushes EAGAIN back at the
// sender (backpressure), a full datagram queue drops the message and
// counts it — so an open-loop sender cannot grow recvq without bound.
func (sk *Socket) Send(data []byte) (int, error) {
	if err := sk.recheckPolicy(); err != nil {
		return 0, err
	}
	sk.mu.Lock()
	if sk.state != StateConnected {
		sk.mu.Unlock()
		return 0, abi.EPIPE
	}
	remote := sk.remote
	peer := sk.peer
	sk.mu.Unlock()

	switch {
	case remote != nil:
		resp := remote(append([]byte(nil), data...))
		sk.mu.Lock()
		if resp != nil {
			// Responses to the socket's own request are never dropped —
			// the app asked for these bytes — but they still count
			// against the budget so backpressure sees them.
			sk.recvq = append(sk.recvq, resp)
			sk.rcvBytes += len(resp)
		}
		sk.mu.Unlock()
		return len(data), nil
	case peer != nil:
		peer.mu.Lock()
		if peer.rcvBytes+len(data) > peer.rcvBudget {
			dgram := peer.Type == SockDgram
			peer.mu.Unlock()
			if dgram {
				sk.stack.dgramDrops.Add(1)
				return len(data), nil
			}
			return 0, abi.EAGAIN
		}
		peer.recvq = append(peer.recvq, append([]byte(nil), data...))
		peer.rcvBytes += len(data)
		peer.mu.Unlock()
		return len(data), nil
	default:
		return 0, abi.EPIPE
	}
}

// SendToNetlink delivers a datagram to the netlink protocol's registered
// daemon. Non-root senders are rejected unless the channel was (mis-)
// configured as world-sendable.
func (sk *Socket) SendToNetlink(proto int, sender Cred, msg []byte) error {
	if sk.Family != AFNetlink {
		return abi.EOPNOTSUPP
	}
	s := sk.stack
	s.mu.Lock()
	entry, ok := s.netlinks[proto]
	s.mu.Unlock()
	if !ok {
		return abi.ENETUNREACH
	}
	if !entry.worldSendable && sender.UID != abi.UIDRoot && sender.UID != abi.UIDSystem {
		return abi.EPERM
	}
	return entry.receiver(sender, msg)
}

// Recv dequeues one buffered message; EAGAIN when empty. Consumed bytes
// are released back to the receive budget.
func (sk *Socket) Recv(p []byte) (int, error) {
	if err := sk.recheckPolicy(); err != nil {
		return 0, err
	}
	sk.mu.Lock()
	defer sk.mu.Unlock()
	if sk.state == StateClosed {
		return 0, abi.EBADF
	}
	if len(sk.recvq) == 0 {
		return 0, abi.EAGAIN
	}
	msg := sk.recvq[0]
	n := copy(p, msg)
	if sk.Type == SockStream && n < len(msg) {
		sk.recvq[0] = msg[n:]
		sk.rcvBytes -= n
	} else {
		sk.recvq = sk.recvq[1:]
		sk.rcvBytes -= len(msg)
	}
	if sk.rcvBytes < 0 {
		sk.rcvBytes = 0
	}
	return n, nil
}

// Pending reports the number of queued messages.
func (sk *Socket) Pending() int {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	return len(sk.recvq)
}

// LocalAddr returns the bound address.
func (sk *Socket) LocalAddr() string {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	return sk.localAddr
}

// PeerAddr returns the connected peer address.
func (sk *Socket) PeerAddr() string {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	return sk.peerAddr
}

// Close tears the socket down and unregisters any names it held.
func (sk *Socket) Close() error {
	sk.mu.Lock()
	local, fam, st := sk.localAddr, sk.Family, sk.state
	sk.state = StateClosed
	sk.recvq = nil
	sk.rcvBytes = 0
	sk.mu.Unlock()

	s := sk.stack
	s.mu.Lock()
	defer s.mu.Unlock()
	if fam == AFInet && st == StateListening {
		delete(s.listeners, local)
	}
	if fam == AFUnix && local != "" {
		delete(s.unixNames, local)
	}
	return nil
}
