package netstack

import (
	"bytes"
	"errors"
	"testing"

	"anception/internal/abi"
)

var (
	appCred  = Cred{UID: abi.UIDAppBase, PID: 100}
	rootCred = Cred{UID: abi.UIDRoot, PID: 1}
)

func TestSocketCreation(t *testing.T) {
	s := New("host")
	sk, err := s.Socket(appCred, AFInet, SockStream, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sk.State() != StateNew {
		t.Fatalf("state = %v", sk.State())
	}
	if _, err := s.Socket(appCred, 0, SockStream, 0); !errors.Is(err, abi.EINVAL) {
		t.Fatalf("invalid family: %v, want EINVAL", err)
	}
}

func TestRemoteExchange(t *testing.T) {
	s := New("cvm")
	s.RegisterRemote("bank.com:443", func(req []byte) []byte {
		return append([]byte("ack:"), req...)
	})
	sk, err := s.Socket(appCred, AFInet, SockStream, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sk.Connect("bank.com:443"); err != nil {
		t.Fatal(err)
	}
	if _, err := sk.Send([]byte("LOGIN")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := sk.Recv(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "ack:LOGIN" {
		t.Fatalf("resp = %q", buf[:n])
	}
}

func TestConnectUnreachable(t *testing.T) {
	s := New("host")
	sk, _ := s.Socket(appCred, AFInet, SockStream, 0)
	if err := sk.Connect("nowhere:1"); !errors.Is(err, abi.ENETUNREACH) {
		t.Fatalf("err = %v, want ENETUNREACH", err)
	}
}

func TestLoopbackListenAccept(t *testing.T) {
	s := New("host")
	srv, _ := s.Socket(rootCred, AFInet, SockStream, 0)
	if err := srv.Bind("127.0.0.1:8000"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Accept(); !errors.Is(err, abi.EAGAIN) {
		t.Fatalf("accept empty backlog: %v, want EAGAIN", err)
	}

	cli, _ := s.Socket(appCred, AFInet, SockStream, 0)
	if err := cli.Connect("127.0.0.1:8000"); err != nil {
		t.Fatal(err)
	}
	conn, err := srv.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := conn.Recv(buf)
	if err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("server recv = %q, %v", buf[:n], err)
	}
	if _, err := conn.Send([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	n, err = cli.Recv(buf)
	if err != nil || string(buf[:n]) != "pong" {
		t.Fatalf("client recv = %q, %v", buf[:n], err)
	}
}

func TestBindAddrInUse(t *testing.T) {
	s := New("host")
	a, _ := s.Socket(rootCred, AFInet, SockStream, 0)
	b, _ := s.Socket(rootCred, AFInet, SockStream, 0)
	if err := a.Bind(":9"); err != nil {
		t.Fatal(err)
	}
	if err := a.Listen(); err != nil {
		t.Fatal(err)
	}
	if err := b.Bind(":9"); !errors.Is(err, abi.EADDRINUSE) {
		t.Fatalf("err = %v, want EADDRINUSE", err)
	}
}

func TestUnixSocketPair(t *testing.T) {
	s := New("host")
	srv, _ := s.Socket(rootCred, AFUnix, SockStream, 0)
	if err := srv.Bind("/dev/socket/zygote"); err != nil {
		t.Fatal(err)
	}
	cli, _ := s.Socket(appCred, AFUnix, SockStream, 0)
	if err := cli.Connect("/dev/socket/zygote"); err != nil {
		t.Fatal(err)
	}
	conn := func() *Socket {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		if len(srv.backlog) == 0 {
			t.Fatal("no pending unix connection")
		}
		return srv.backlog[0]
	}()
	if _, err := cli.Send([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if n, err := conn.Recv(buf); err != nil || string(buf[:n]) != "hi" {
		t.Fatalf("unix recv = %q, %v", buf[:n], err)
	}
}

func TestStreamPartialRecvKeepsRemainder(t *testing.T) {
	s := New("host")
	s.RegisterRemote("r:1", func(req []byte) []byte { return []byte("abcdefgh") })
	sk, _ := s.Socket(appCred, AFInet, SockStream, 0)
	if err := sk.Connect("r:1"); err != nil {
		t.Fatal(err)
	}
	if _, err := sk.Send([]byte("go")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if n, _ := sk.Recv(buf); string(buf[:n]) != "abc" {
		t.Fatalf("first chunk = %q", buf[:n])
	}
	rest := make([]byte, 16)
	if n, _ := sk.Recv(rest); string(rest[:n]) != "defgh" {
		t.Fatalf("second chunk = %q", rest[:n])
	}
}

func TestNetlinkPermissionModel(t *testing.T) {
	s := New("host")
	var got []byte
	var from Cred
	// Correctly configured channel: only root/system may send.
	s.RegisterNetlink(15, func(sender Cred, msg []byte) error {
		from = sender
		got = append([]byte(nil), msg...)
		return nil
	}, false)

	sk, _ := s.Socket(appCred, AFNetlink, SockDgram, 15)
	if err := sk.SendToNetlink(15, appCred, []byte("evil")); !errors.Is(err, abi.EPERM) {
		t.Fatalf("app send on protected channel: %v, want EPERM", err)
	}
	if err := sk.SendToNetlink(15, rootCred, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("ok")) || from.UID != abi.UIDRoot {
		t.Fatalf("delivery = %q from %+v", got, from)
	}
}

func TestNetlinkWorldSendableMisconfiguration(t *testing.T) {
	s := New("host")
	delivered := false
	// The GingerBreak misconfiguration: anyone can send to vold.
	s.RegisterNetlink(16, func(sender Cred, msg []byte) error {
		delivered = true
		return nil
	}, true)
	sk, _ := s.Socket(appCred, AFNetlink, SockDgram, 16)
	if err := sk.SendToNetlink(16, appCred, []byte("NEGATIVE_INDEX")); err != nil {
		t.Fatal(err)
	}
	if !delivered {
		t.Fatal("world-sendable channel dropped app message")
	}
}

func TestNetlinkUnknownProtocol(t *testing.T) {
	s := New("host")
	sk, _ := s.Socket(appCred, AFNetlink, SockDgram, 99)
	if err := sk.SendToNetlink(99, appCred, nil); !errors.Is(err, abi.ENETUNREACH) {
		t.Fatalf("err = %v, want ENETUNREACH", err)
	}
	sk2, _ := s.Socket(appCred, AFInet, SockDgram, 0)
	if err := sk2.SendToNetlink(1, appCred, nil); !errors.Is(err, abi.EOPNOTSUPP) {
		t.Fatalf("netlink send on inet socket: %v, want EOPNOTSUPP", err)
	}
}

func TestVulnerabilityInjection(t *testing.T) {
	s := New("host")
	s.InjectVulnerability(AFBluetooth, SockDgram, VulnNullSendpage)
	vuln, _ := s.Socket(appCred, AFBluetooth, SockDgram, 0)
	if !vuln.HasVulnerability(VulnNullSendpage) {
		t.Fatal("bluetooth dgram socket should carry CVE-2009-2692")
	}
	clean, _ := s.Socket(appCred, AFInet, SockStream, 0)
	if clean.HasVulnerability(VulnNullSendpage) {
		t.Fatal("inet socket must not carry the bluetooth bug")
	}
}

func TestSendOnUnconnected(t *testing.T) {
	s := New("host")
	sk, _ := s.Socket(appCred, AFInet, SockStream, 0)
	if _, err := sk.Send([]byte("x")); !errors.Is(err, abi.EPIPE) {
		t.Fatalf("err = %v, want EPIPE", err)
	}
}

func TestCloseReleasesNames(t *testing.T) {
	s := New("host")
	srv, _ := s.Socket(rootCred, AFInet, SockStream, 0)
	if err := srv.Bind(":80"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	again, _ := s.Socket(rootCred, AFInet, SockStream, 0)
	if err := again.Bind(":80"); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	if _, err := srv.Recv(nil); !errors.Is(err, abi.EBADF) {
		t.Fatalf("recv after close: %v, want EBADF", err)
	}

	u, _ := s.Socket(rootCred, AFUnix, SockStream, 0)
	if err := u.Bind("/dev/socket/x"); err != nil {
		t.Fatal(err)
	}
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}
	u2, _ := s.Socket(rootCred, AFUnix, SockStream, 0)
	if err := u2.Bind("/dev/socket/x"); err != nil {
		t.Fatalf("unix rebind after close: %v", err)
	}
}

func TestFamilyAndTypeStrings(t *testing.T) {
	if AFBluetooth.String() != "PF_BLUETOOTH" || AFInet.String() != "AF_INET" {
		t.Fatal("family names wrong")
	}
	if SockStream.String() != "SOCK_STREAM" || SockDgram.String() != "SOCK_DGRAM" {
		t.Fatal("type names wrong")
	}
	if Family(42).String() != "AF(42)" {
		t.Fatal("unknown family format")
	}
}

func TestDgramRecvDiscardsRemainder(t *testing.T) {
	s := New("host")
	srvSock, _ := s.Socket(rootCred, AFUnix, SockDgram, 0)
	if err := srvSock.Bind("/dev/socket/dgram"); err != nil {
		t.Fatal(err)
	}
	cli, _ := s.Socket(appCred, AFUnix, SockDgram, 0)
	if err := cli.Connect("/dev/socket/dgram"); err != nil {
		t.Fatal(err)
	}
	srvSock.mu.Lock()
	conn := srvSock.backlog[0]
	srvSock.mu.Unlock()
	if _, err := cli.Send([]byte("datagram-payload")); err != nil {
		t.Fatal(err)
	}
	small := make([]byte, 4)
	if n, _ := conn.Recv(small); string(small[:n]) != "data" {
		t.Fatalf("dgram head = %q", small[:n])
	}
	// Datagram semantics: the remainder of the message is gone.
	if _, err := conn.Recv(small); !errors.Is(err, abi.EAGAIN) {
		t.Fatalf("second recv: %v, want EAGAIN", err)
	}
}
