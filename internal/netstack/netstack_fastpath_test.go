package netstack

import (
	"errors"
	"fmt"
	"testing"

	"anception/internal/abi"
)

// TestRecvBudgetStreamBackpressure: a full stream receive queue pushes
// EAGAIN back at the sender instead of growing without bound, and a Recv
// that frees budget lets the sender proceed.
func TestRecvBudgetStreamBackpressure(t *testing.T) {
	s := New("host")
	srv, _ := s.Socket(rootCred, AFInet, SockStream, 0)
	if err := srv.Bind("svc:1"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	cli, _ := s.Socket(appCred, AFInet, SockStream, 0)
	if err := cli.Connect("svc:1"); err != nil {
		t.Fatal(err)
	}
	peer, err := srv.Accept()
	if err != nil {
		t.Fatal(err)
	}
	peer.SetRcvBuf(8)

	if _, err := cli.Send([]byte("12345678")); err != nil {
		t.Fatalf("send within budget: %v", err)
	}
	if _, err := cli.Send([]byte("x")); !errors.Is(err, abi.EAGAIN) {
		t.Fatalf("send past budget: %v, want EAGAIN", err)
	}
	buf := make([]byte, 8)
	if _, err := peer.Recv(buf); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Send([]byte("x")); err != nil {
		t.Fatalf("send after drain: %v", err)
	}
	if got := s.DgramDrops(); got != 0 {
		t.Fatalf("stream backpressure counted as dgram drop: %d", got)
	}
}

// TestRecvBudgetDgramDrops: a full datagram queue silently drops the
// message — the send still reports success, open-loop style — and the
// stack counts the drop.
func TestRecvBudgetDgramDrops(t *testing.T) {
	s := New("host")
	// The listener is a stream socket (dgram sockets don't listen); the
	// accepted side inherits the connecting client's dgram type, which is
	// what drop-vs-backpressure keys on.
	srv, _ := s.Socket(rootCred, AFInet, SockStream, 0)
	if err := srv.Bind("svc:2"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	cli, _ := s.Socket(appCred, AFInet, SockDgram, 0)
	if err := cli.Connect("svc:2"); err != nil {
		t.Fatal(err)
	}
	peer, err := srv.Accept()
	if err != nil {
		t.Fatal(err)
	}
	peer.SetRcvBuf(8)

	if n, err := cli.Send([]byte("12345678")); err != nil || n != 8 {
		t.Fatalf("send within budget: n=%d err=%v", n, err)
	}
	if n, err := cli.Send([]byte("dropped")); err != nil || n != 7 {
		t.Fatalf("dgram overflow must look sent: n=%d err=%v", n, err)
	}
	if got := s.DgramDrops(); got != 1 {
		t.Fatalf("DgramDrops = %d, want 1", got)
	}
	buf := make([]byte, 16)
	n, err := peer.Recv(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "12345678" {
		t.Fatalf("kept message = %q", buf[:n])
	}
	if peer.Pending() != 0 {
		t.Fatalf("dropped dgram still queued: pending=%d", peer.Pending())
	}
}

// TestAcceptBatch: one call drains up to max pending connections, in
// arrival order; an empty backlog is EAGAIN, not a zero-length success.
func TestAcceptBatch(t *testing.T) {
	s := New("host")
	srv, _ := s.Socket(rootCred, AFInet, SockStream, 0)
	if err := srv.Bind("svc:3"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		cli, _ := s.Socket(appCred, AFInet, SockStream, 0)
		if err := cli.Connect("svc:3"); err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.Backlog(); got != 5 {
		t.Fatalf("Backlog = %d, want 5", got)
	}
	first, err := srv.AcceptBatch(3)
	if err != nil || len(first) != 3 {
		t.Fatalf("AcceptBatch(3) = %d conns, err %v", len(first), err)
	}
	rest, err := srv.AcceptBatch(0) // 0 = drain everything
	if err != nil || len(rest) != 2 {
		t.Fatalf("AcceptBatch(0) = %d conns, err %v", len(rest), err)
	}
	if _, err := srv.AcceptBatch(4); !errors.Is(err, abi.EAGAIN) {
		t.Fatalf("empty backlog: %v, want EAGAIN", err)
	}
}

// TestConnectPolicyRecheckOnGenerationRoll is the regression test for the
// boot-generation rollover contract: a socket that passed the policy at
// connect time re-runs the then-current policy after the stack generation
// rolls (a CVM restart), so a deny policy swapped in around the restart
// applies to surviving sockets — not just new connects.
func TestConnectPolicyRecheckOnGenerationRoll(t *testing.T) {
	s := New("cvm")
	s.RegisterRemote("bank.com:443", func(req []byte) []byte { return []byte("ok") })
	s.SetConnectPolicy(func(cred Cred, addr string) error { return nil })

	sk, _ := s.Socket(appCred, AFInet, SockStream, 0)
	if err := sk.Connect("bank.com:443"); err != nil {
		t.Fatal(err)
	}
	if _, err := sk.Send([]byte("q")); err != nil {
		t.Fatalf("send under permissive policy: %v", err)
	}

	// Swapping the policy alone does not disturb an established socket:
	// its connect-time check still stands for this boot generation.
	s.SetConnectPolicy(func(cred Cred, addr string) error {
		return fmt.Errorf("firewalled: %w", abi.ENETUNREACH)
	})
	if _, err := sk.Send([]byte("q")); err != nil {
		t.Fatalf("send in same generation: %v", err)
	}

	// The restart rolls the generation; the surviving socket's next op
	// re-runs the (now denying) policy.
	s.SetGeneration(s.Generation() + 1)
	if _, err := sk.Send([]byte("q")); !errors.Is(err, abi.ENETUNREACH) {
		t.Fatalf("send after generation roll: %v, want ENETUNREACH", err)
	}
	buf := make([]byte, 4)
	if _, err := sk.Recv(buf); !errors.Is(err, abi.ENETUNREACH) {
		t.Fatalf("recv after generation roll: %v, want ENETUNREACH", err)
	}

	// Lifting the deny re-admits the socket and pins the new generation:
	// later swaps within the same generation no longer apply.
	s.SetConnectPolicy(nil)
	if _, err := sk.Send([]byte("q")); err != nil {
		t.Fatalf("send after policy lifted: %v", err)
	}
	s.SetConnectPolicy(func(cred Cred, addr string) error { return abi.ENETUNREACH })
	if _, err := sk.Send([]byte("q")); err != nil {
		t.Fatalf("re-checked socket must stay admitted until the next roll: %v", err)
	}
}

// TestPolicyRecheckSkipsServerSideSockets: accepted server-side sockets
// never ran a connect-time check, so a generation roll must not subject
// them to the outbound policy.
func TestPolicyRecheckSkipsServerSideSockets(t *testing.T) {
	s := New("cvm")
	srv, _ := s.Socket(rootCred, AFInet, SockStream, 0)
	if err := srv.Bind("svc:4"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	cli, _ := s.Socket(appCred, AFInet, SockStream, 0)
	if err := cli.Connect("svc:4"); err != nil {
		t.Fatal(err)
	}
	peer, err := srv.Accept()
	if err != nil {
		t.Fatal(err)
	}

	s.SetConnectPolicy(func(cred Cred, addr string) error { return abi.ENETUNREACH })
	s.SetGeneration(s.Generation() + 1)
	if _, err := peer.Send([]byte("reply")); err != nil {
		t.Fatalf("server-side socket hit outbound policy: %v", err)
	}
	// The outbound client socket, by contrast, is re-checked and denied.
	if _, err := cli.Send([]byte("req")); !errors.Is(err, abi.ENETUNREACH) {
		t.Fatalf("client socket after roll: %v, want ENETUNREACH", err)
	}
}
