package proxy

import (
	"container/list"
	"fmt"
	"path"
	"sync"

	"anception/internal/abi"
	"anception/internal/vfs"
)

// ExecCache implements the host-side execution cache for user-generated
// code (Section III-D, Fork/Clone and exec): binaries written by an app
// live in the CVM, so before exec the Anception layer copies them out to a
// protected host directory and execs from there. The cache directory is
// owned by the system and not writable by apps, so an app cannot trick
// the system into copying an executable to a restricted location.
//
// The cache is bounded: placing a binary beyond MaxExecCacheEntries evicts
// the least-recently-placed one from the host filesystem, so a hostile app
// spraying exec targets cannot grow the protected directory without limit.
type ExecCache struct {
	hostFS *vfs.FileSystem
	root   string

	// lru orders cached binaries, most recently placed/refreshed at the
	// front; entries maps host path -> its lru element.
	mu      sync.Mutex
	lru     *list.List
	entries map[string]*list.Element
	max     int
}

// CacheRoot is the protected host directory holding copied-out binaries.
const CacheRoot = "/anception/execcache"

// MaxExecCacheEntries bounds the number of copied-out binaries kept on the
// host before the oldest is evicted.
const MaxExecCacheEntries = 64

// NewExecCache creates the cache directory tree on the host filesystem.
func NewExecCache(hostFS *vfs.FileSystem) (*ExecCache, error) {
	system := abi.Cred{UID: abi.UIDRoot}
	if err := hostFS.MkdirAll(system, CacheRoot, 0o711); err != nil {
		return nil, fmt.Errorf("exec cache: %w", err)
	}
	return &ExecCache{
		hostFS:  hostFS,
		root:    CacheRoot,
		lru:     list.New(),
		entries: make(map[string]*list.Element),
		max:     MaxExecCacheEntries,
	}, nil
}

// Place copies a user-generated binary (fetched from the CVM by the
// caller) into the cache for the given app UID and returns the host path
// to exec. The file is root-owned and world-executable but not writable
// by the app. Re-placing an existing path overwrites its contents and
// refreshes its eviction rank.
func (c *ExecCache) Place(uid int, guestPath string, contents []byte) (string, error) {
	system := abi.Cred{UID: abi.UIDRoot}
	dir := fmt.Sprintf("%s/%d", c.root, uid)
	if err := c.hostFS.MkdirAll(system, dir, 0o711); err != nil {
		return "", fmt.Errorf("exec cache dir: %w", err)
	}
	dst := path.Join(dir, path.Base(guestPath))
	if err := c.hostFS.WriteFile(system, dst, contents, 0o755); err != nil {
		return "", fmt.Errorf("exec cache place %q: %w", guestPath, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[dst]; ok {
		c.lru.MoveToFront(e)
	} else {
		c.entries[dst] = c.lru.PushFront(dst)
		for c.lru.Len() > c.max {
			oldest := c.lru.Back()
			victim := oldest.Value.(string)
			c.lru.Remove(oldest)
			delete(c.entries, victim)
			// Best-effort: a binary already evicted by hand is fine.
			_ = c.hostFS.Unlink(system, victim)
		}
	}
	return dst, nil
}

// Contains reports whether a host path is currently cached.
func (c *ExecCache) Contains(hostPath string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[hostPath]
	return ok
}

// Len reports the number of cached binaries.
func (c *ExecCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Root returns the cache root path.
func (c *ExecCache) Root() string { return c.root }
