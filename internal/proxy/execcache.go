package proxy

import (
	"fmt"
	"path"

	"anception/internal/abi"
	"anception/internal/vfs"
)

// ExecCache implements the host-side execution cache for user-generated
// code (Section III-D, Fork/Clone and exec): binaries written by an app
// live in the CVM, so before exec the Anception layer copies them out to a
// protected host directory and execs from there. The cache directory is
// owned by the system and not writable by apps, so an app cannot trick
// the system into copying an executable to a restricted location.
type ExecCache struct {
	hostFS *vfs.FileSystem
	root   string
}

// CacheRoot is the protected host directory holding copied-out binaries.
const CacheRoot = "/anception/execcache"

// NewExecCache creates the cache directory tree on the host filesystem.
func NewExecCache(hostFS *vfs.FileSystem) (*ExecCache, error) {
	system := abi.Cred{UID: abi.UIDRoot}
	if err := hostFS.MkdirAll(system, CacheRoot, 0o711); err != nil {
		return nil, fmt.Errorf("exec cache: %w", err)
	}
	return &ExecCache{hostFS: hostFS, root: CacheRoot}, nil
}

// Place copies a user-generated binary (fetched from the CVM by the
// caller) into the cache for the given app UID and returns the host path
// to exec. The file is root-owned and world-executable but not writable
// by the app.
func (c *ExecCache) Place(uid int, guestPath string, contents []byte) (string, error) {
	system := abi.Cred{UID: abi.UIDRoot}
	dir := fmt.Sprintf("%s/%d", c.root, uid)
	if err := c.hostFS.MkdirAll(system, dir, 0o711); err != nil {
		return "", fmt.Errorf("exec cache dir: %w", err)
	}
	dst := path.Join(dir, path.Base(guestPath))
	if err := c.hostFS.WriteFile(system, dst, contents, 0o755); err != nil {
		return "", fmt.Errorf("exec cache place %q: %w", guestPath, err)
	}
	return dst, nil
}

// Root returns the cache root path.
func (c *ExecCache) Root() string { return c.root }
