package proxy

import (
	"errors"
	"strings"
	"testing"

	"anception/internal/abi"
	"anception/internal/binder"
	"anception/internal/kernel"
	"anception/internal/netstack"
	"anception/internal/sim"
	"anception/internal/vfs"
)

func newGuestKernel(t *testing.T) (*kernel.Kernel, *sim.Clock) {
	t.Helper()
	clock := sim.NewClock()
	phys := kernel.NewPhysical(64 << 20)
	fs := vfs.New()
	root := abi.Cred{UID: abi.UIDRoot}
	for _, d := range []string{"/data", "/data/data"} {
		if err := fs.Mkdir(root, d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Mkdir(root, "/data/data/app", 0o700); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chown(root, "/data/data/app", 10001, 10001); err != nil {
		t.Fatal(err)
	}
	g := kernel.New(kernel.Config{
		Name:   "cvm",
		Clock:  clock,
		Model:  sim.DefaultLatencyModel(),
		Trace:  sim.NewTrace(clock),
		FS:     fs,
		Net:    netstack.New("cvm"),
		Binder: binder.NewDriver(),
		Alloc:  phys.NewAllocator("cvm", kernel.Region{}),
	})
	return g, clock
}

// taskFactory is a host-kernel stand-in used purely to mint host tasks
// with distinct PIDs.
type taskFactory struct{ k *kernel.Kernel }

func newTaskFactory(t *testing.T) *taskFactory {
	t.Helper()
	k, _ := newGuestKernel(t) // same shape; only used as a task factory
	return &taskFactory{k: k}
}

func (f *taskFactory) hostTask() *kernel.Task {
	task := f.k.Spawn(abi.Cred{UID: 10001, GID: 10001}, "app")
	task.CWD = "/data/data/app"
	return task
}

func newHostTask(t *testing.T) *kernel.Task {
	t.Helper()
	return newTaskFactory(t).hostTask()
}

func TestEnsureCreatesCredentialMirror(t *testing.T) {
	g, _ := newGuestKernel(t)
	m := NewManager(g, g.Clock(), g.Model(), nil)
	host := newHostTask(t)
	host.Umask = 0o027

	p, err := m.Ensure(host)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cred.UID != host.Cred.UID || p.Cred.GID != host.Cred.GID {
		t.Fatalf("proxy cred = %+v", p.Cred)
	}
	if p.Umask != 0o027 || p.CWD != host.CWD {
		t.Fatalf("proxy state = umask %o cwd %q", p.Umask, p.CWD)
	}
	if p.AS.ResidentPages() != FootprintPages {
		t.Fatalf("proxy footprint = %d pages, want %d", p.AS.ResidentPages(), FootprintPages)
	}
	// Idempotent.
	p2, err := m.Ensure(host)
	if err != nil || p2 != p {
		t.Fatalf("Ensure not idempotent: %v %v", p2, err)
	}
	if m.Count() != 1 {
		t.Fatalf("count = %d", m.Count())
	}
}

func TestExecuteRunsInProxyContext(t *testing.T) {
	g, _ := newGuestKernel(t)
	m := NewManager(g, g.Clock(), g.Model(), nil)
	host := newHostTask(t)
	p, err := m.Ensure(host)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Execute(p, kernel.Args{Nr: abi.SysGetuid})
	if res.Ret != int64(host.Cred.UID) {
		t.Fatalf("guest getuid = %d, want host uid %d", res.Ret, host.Cred.UID)
	}
}

func TestExecutePermissionChecksUseProxyCred(t *testing.T) {
	g, _ := newGuestKernel(t)
	root := abi.Cred{UID: abi.UIDRoot}
	if err := g.FS().Mkdir(root, "/data/data/other", 0o700); err != nil {
		t.Fatal(err)
	}
	if err := g.FS().Chown(root, "/data/data/other", 10099, 10099); err != nil {
		t.Fatal(err)
	}
	m := NewManager(g, g.Clock(), g.Model(), nil)
	host := newHostTask(t)
	p, err := m.Ensure(host)
	if err != nil {
		t.Fatal(err)
	}
	// The proxy carries UID 10001, so another app's 0700 dir is closed.
	res := m.Execute(p, kernel.Args{Nr: abi.SysOpen, Path: "/data/data/other", Flags: abi.ORdOnly})
	if !errors.Is(res.Err, abi.EACCES) {
		t.Fatalf("open other app dir via proxy: %v, want EACCES", res.Err)
	}
}

func TestDispatchCostOptimizedVsNaive(t *testing.T) {
	g, clock := newGuestKernel(t)
	model := g.Model()
	m := NewManager(g, clock, model, nil)
	host := newHostTask(t)
	p, err := m.Ensure(host)
	if err != nil {
		t.Fatal(err)
	}

	before := clock.Now()
	m.Execute(p, kernel.Args{Nr: abi.SysGetpid})
	fast := clock.Now() - before

	m.SetNaiveDispatch(true)
	before = clock.Now()
	m.Execute(p, kernel.Args{Nr: abi.SysGetpid})
	slow := clock.Now() - before

	if slow-fast != 4*model.GuestContextSwitch {
		t.Fatalf("naive dispatch penalty = %v, want %v", slow-fast, 4*model.GuestContextSwitch)
	}
	if m.DispatchCost() != model.ProxyDispatch+4*model.GuestContextSwitch {
		t.Fatal("DispatchCost does not reflect naive mode")
	}
}

func TestMirrorFork(t *testing.T) {
	g, _ := newGuestKernel(t)
	m := NewManager(g, g.Clock(), g.Model(), nil)
	factory := newTaskFactory(t)
	parent := factory.hostTask()
	pp, err := m.Ensure(parent)
	if err != nil {
		t.Fatal(err)
	}
	// Give the parent proxy an open file; the child proxy must inherit it.
	res := m.Execute(pp, kernel.Args{Nr: abi.SysOpen, Path: "/data/data/app/shared", Flags: abi.OWrOnly | abi.OCreat, Mode: 0o644})
	if !res.Ok() {
		t.Fatal(res.Err)
	}

	child := factory.hostTask() // stands in for the forked host child
	cp, err := m.MirrorFork(parent.PID, child)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Cred.UID != parent.Cred.UID {
		t.Fatalf("child proxy cred = %+v", cp.Cred)
	}
	if cp.FD(res.FD) == nil {
		t.Fatal("child proxy did not inherit parent's guest descriptors")
	}
	if m.ProxyFor(child.PID) != cp {
		t.Fatal("child binding missing")
	}
	if m.Count() != 2 {
		t.Fatalf("count = %d", m.Count())
	}
}

func TestMirrorForkWithoutParentProxyEnrollsFresh(t *testing.T) {
	g, _ := newGuestKernel(t)
	m := NewManager(g, g.Clock(), g.Model(), nil)
	child := newHostTask(t)
	cp, err := m.MirrorFork(12345, child)
	if err != nil || cp == nil {
		t.Fatalf("fresh enrollment failed: %v", err)
	}
}

func TestMirrorCredChdirUmask(t *testing.T) {
	g, _ := newGuestKernel(t)
	m := NewManager(g, g.Clock(), g.Model(), nil)
	host := newHostTask(t)
	if _, err := m.Ensure(host); err != nil {
		t.Fatal(err)
	}
	m.MirrorCred(host.PID, abi.Cred{UID: 10777, GID: 10777})
	m.MirrorChdir(host.PID, "/data")
	m.MirrorUmask(host.PID, 0o077)
	p := m.ProxyFor(host.PID)
	if p.Cred.UID != 10777 || p.CWD != "/data" || p.Umask != 0o077 {
		t.Fatalf("mirror state = %+v cwd=%q umask=%o", p.Cred, p.CWD, p.Umask)
	}
}

func TestMirrorExitReapsProxy(t *testing.T) {
	g, _ := newGuestKernel(t)
	m := NewManager(g, g.Clock(), g.Model(), nil)
	host := newHostTask(t)
	p, err := m.Ensure(host)
	if err != nil {
		t.Fatal(err)
	}
	m.MirrorExit(host.PID)
	if p.CurrentState() != kernel.TaskDead {
		t.Fatal("proxy still alive after host exit")
	}
	if m.ProxyFor(host.PID) != nil || m.Count() != 0 {
		t.Fatal("binding not removed")
	}
	// Double exit is harmless.
	m.MirrorExit(host.PID)
}

func TestVerifyBijection(t *testing.T) {
	g, _ := newGuestKernel(t)
	m := NewManager(g, g.Clock(), g.Model(), nil)
	factory := newTaskFactory(t)
	hostA := factory.hostTask()
	hostB := factory.hostTask()
	if _, err := m.Ensure(hostA); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Ensure(hostB); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyBijection([]*kernel.Task{hostA, hostB}); err != nil {
		t.Fatalf("bijection: %v", err)
	}
	// Desynchronize a credential and expect detection.
	m.ProxyFor(hostA.PID).Cred.UID = 99999
	if err := m.VerifyBijection([]*kernel.Task{hostA, hostB}); err == nil {
		t.Fatal("credential drift not detected")
	}
}

func TestExecCachePlacement(t *testing.T) {
	fs := vfs.New()
	cache, err := NewExecCache(fs)
	if err != nil {
		t.Fatal(err)
	}
	hostPath, err := cache.Place(10001, "/data/data/app/exploit", []byte("ELF-user-code"))
	if err != nil {
		t.Fatal(err)
	}
	if hostPath != "/anception/execcache/10001/exploit" {
		t.Fatalf("path = %q", hostPath)
	}
	root := abi.Cred{UID: abi.UIDRoot}
	st, err := fs.StatPath(root, hostPath)
	if err != nil {
		t.Fatal(err)
	}
	if st.UID != abi.UIDRoot || st.Mode != 0o755 {
		t.Fatalf("cached binary stat = %+v", st)
	}
	// The app can execute but not modify the cached copy.
	appCred := abi.Cred{UID: 10001, GID: 10001}
	if err := fs.CheckAccess(appCred, hostPath, abi.AccessExec); err != nil {
		t.Fatalf("app exec access: %v", err)
	}
	if err := fs.CheckAccess(appCred, hostPath, abi.AccessWrite); !errors.Is(err, abi.EACCES) {
		t.Fatalf("app write access: %v, want EACCES", err)
	}
	// Apps cannot list or write the cache root.
	if err := fs.CheckAccess(appCred, CacheRoot, abi.AccessWrite); !errors.Is(err, abi.EACCES) {
		t.Fatalf("cache root write: %v, want EACCES", err)
	}
}

// TestExecuteBatchReportsMidBatchFailure: a failing call in the middle of
// a batch must surface in the aggregate error (naming its position) while
// the result slice still carries every call's individual outcome —
// callers must not infer success from the slice length alone.
func TestExecuteBatchReportsMidBatchFailure(t *testing.T) {
	g, _ := newGuestKernel(t)
	m := NewManager(g, g.Clock(), g.Model(), nil)
	host := newHostTask(t)
	p, err := m.Ensure(host)
	if err != nil {
		t.Fatal(err)
	}

	calls := []*kernel.Args{
		{Nr: abi.SysGetuid},
		{Nr: abi.SysPwrite64, FD: 99, Buf: []byte("x")}, // unopened fd
		{Nr: abi.SysGetuid},
	}
	results, batchErr := m.ExecuteBatch(p, calls)
	if len(results) != len(calls) {
		t.Fatalf("got %d results for %d calls", len(results), len(calls))
	}
	if !results[0].Ok() || !results[2].Ok() {
		t.Fatalf("calls around the failure did not run: %+v", results)
	}
	if !errors.Is(results[1].Err, abi.EBADF) {
		t.Fatalf("failing call result: %v, want EBADF", results[1].Err)
	}
	if batchErr == nil {
		t.Fatal("mid-batch failure not reported in the aggregate error")
	}
	if !errors.Is(batchErr, abi.EBADF) {
		t.Fatalf("aggregate error %v does not wrap the errno", batchErr)
	}
	if !strings.Contains(batchErr.Error(), "call 1") {
		t.Fatalf("aggregate error %q does not identify the failing position", batchErr)
	}

	// An all-green batch reports no error.
	if _, err := m.ExecuteBatch(p, []*kernel.Args{{Nr: abi.SysGetuid}}); err != nil {
		t.Fatalf("clean batch reported %v", err)
	}
}
