package proxy

import (
	"fmt"

	"anception/internal/abi"
	"anception/internal/kernel"
	"anception/internal/marshal"
)

// Guest-side execution of linked submissions (DESIGN.md §17). A chain
// arrives through the ring as one SQ slot; the pool worker that pops it
// has already paid the wakeup, and the whole chain executes inside a
// single guest trap context — the exceptionless-syscall shape: one
// doorbell, one dispatch, one trap entry, N dependent calls.

// SetChainStep installs a hook invoked before each chain link executes,
// with the index of the link about to run. The supervisor's fault drills
// use it to kill the CVM between links K and K+1; nil removes it.
func (m *Manager) SetChainStep(f func(next int)) {
	m.mu.Lock()
	m.chainStep = f
	m.mu.Unlock()
}

func (m *Manager) chainStepHook() func(int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.chainStep
}

// ExecuteChainDrained runs a linked submission in the proxy's context.
// Like ExecuteDrained, the ring pool already paid the dispatch; unlike
// the batch paths, the whole chain shares ONE guest trap entry — the
// links run back-to-back in kernel context without returning to the
// proxy's user half between calls.
//
// Register bindings are resolved here, guest-side: FDFrom replaces the
// link's descriptor with the result descriptor of an earlier link, and
// UseCursor offsets the link by the running bytes-read cursor. A link
// that fails short-circuits the rest of the chain: the links that never
// ran carry the failing error verbatim, and Executed stops counting, so
// the host can split completions from failures positionally.
func (m *Manager) ExecuteChainDrained(proxy *kernel.Task, links []marshal.ChainLink) marshal.ChainResult {
	m.clock.Advance(m.model.SyscallEntry)
	cr := marshal.ChainResult{Results: make([]kernel.Result, len(links))}
	hook := m.chainStepHook()
	var cursor int64
	var failErr error
	for i, ln := range links {
		if hook != nil {
			hook(i)
		}
		// A CVM restart mid-chain fails every remaining link with the
		// "container dead" errno; the links already executed keep their
		// results (epoch semantics: Submitted = Completed + Failed).
		if failErr == nil && m.guest.Panicked() != "" {
			failErr = fmt.Errorf("chain link %d: container down: %w", i, abi.EHOSTDOWN)
		}
		if failErr != nil {
			cr.Results[i] = kernel.Result{Ret: -1, Err: failErr}
			continue
		}
		a := *ln.Args
		if ln.FDFrom >= 0 {
			prev := cr.Results[ln.FDFrom]
			if prev.FD > 0 {
				a.FD = prev.FD
			} else {
				a.FD = int(prev.Ret)
			}
		}
		if ln.UseCursor {
			a.Off += cursor
		}
		// Wire chains carry read buffers as a size, like sockops: the
		// destination lives guest-side until the completion copies it out.
		if chainReadLike(a.Nr) && len(a.Buf) == 0 && a.Size > 0 {
			a.Buf = make([]byte, a.Size)
		}
		res := m.guest.InvokeLocal(proxy, a)
		cr.Results[i] = res
		cr.Executed++
		if !res.Ok() {
			failErr = res.Err
			continue
		}
		if chainReadLike(a.Nr) && res.Ret > 0 {
			cursor += res.Ret
		}
	}
	return cr
}

// chainReadLike mirrors the layer's read-like set: calls whose positive
// return value advances the chain's bytes-read cursor.
func chainReadLike(nr abi.SyscallNr) bool {
	switch nr {
	case abi.SysRead, abi.SysPread64, abi.SysRecv, abi.SysRecvfrom,
		abi.SysReadv, abi.SysPreadv:
		return true
	default:
		return false
	}
}
