package proxy

import (
	"sync"
	"testing"
	"time"

	"anception/internal/hypervisor"
	"anception/internal/kernel"
	"anception/internal/marshal"
	"anception/internal/sim"
)

func newPoolRig(t *testing.T, depth, workers int) (*marshal.RingChannel, *Pool, *sim.Clock) {
	t.Helper()
	clock := sim.NewClock()
	model := sim.DefaultLatencyModel()
	phys := kernel.NewPhysical(256 << 20)
	cvm, err := hypervisor.Launch(phys, hypervisor.Config{
		Clock: clock, Model: model, MemoryBytes: 64 << 20, ChannelPages: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	ring := marshal.NewRingChannel(cvm, clock, model, nil, depth, 0)
	pool := NewPool(ring, workers, clock, model)
	t.Cleanup(func() {
		ring.Close()
		pool.Wait()
	})
	return ring, pool, clock
}

// TestPoolPreservesFIFOPerKey: the pool runs 4 workers concurrently, yet
// entries sharing a key must execute in submission order — the layer's
// per-descriptor ordering guarantee.
func TestPoolPreservesFIFOPerKey(t *testing.T) {
	const keys, perKey = 4, 10
	ring, pool, _ := newPoolRig(t, keys*perKey, 4)
	pool.Start()

	var mu sync.Mutex
	order := make(map[int64][]int)

	pendings := make([]*marshal.Pending, 0, keys*perKey)
	// Interleave keys in submission order: key 0 seq 0, key 1 seq 0, ...
	for seq := 0; seq < perKey; seq++ {
		for k := int64(0); k < keys; k++ {
			k, seq := k, seq
			p, err := ring.Submit([]byte("x"), k, func(req []byte) []byte {
				mu.Lock()
				order[k] = append(order[k], seq)
				mu.Unlock()
				return req
			})
			if err != nil {
				t.Fatal(err)
			}
			pendings = append(pendings, p)
		}
	}
	for _, p := range pendings {
		if _, err := p.Wait(); err != nil {
			t.Fatal(err)
		}
	}

	for k := int64(0); k < keys; k++ {
		got := order[k]
		if len(got) != perKey {
			t.Fatalf("key %d: executed %d of %d entries", k, len(got), perKey)
		}
		for i, seq := range got {
			if seq != i {
				t.Fatalf("key %d: execution order %v violates submission order", k, got)
			}
		}
	}
}

// TestPoolChargesDispatchPerWakeup: entries queued while a worker is busy
// drain off that worker's single wakeup — one ProxyDispatch for the whole
// batch, the guest half of doorbell coalescing.
func TestPoolChargesDispatchPerWakeup(t *testing.T) {
	const n = 16
	ring, pool, _ := newPoolRig(t, n, 4)
	pool.Start()

	// The first handler parks its worker on a gate so the remaining 15
	// same-key entries pile up behind it; on release the worker drains
	// them all without going idle.
	gate := make(chan struct{})
	first, err := ring.Submit([]byte("x"), 7, func(req []byte) []byte {
		<-gate
		return req
	})
	if err != nil {
		t.Fatal(err)
	}
	rest := make([]*marshal.Pending, n-1)
	for i := range rest {
		p, err := ring.Submit([]byte("x"), 7, func(req []byte) []byte { return req })
		if err != nil {
			t.Fatal(err)
		}
		rest[i] = p
	}
	time.Sleep(50 * time.Millisecond) // let the dispatcher shard the backlog
	close(gate)

	if _, err := first.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, p := range rest {
		if _, err := p.Wait(); err != nil {
			t.Fatal(err)
		}
	}

	st := pool.Stats()
	if st.Wakeups != 1 || st.Drained != n-1 {
		t.Fatalf("wakeups=%d drained=%d, want 1/%d", st.Wakeups, st.Drained, n-1)
	}
}
