package proxy

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"anception/internal/abi"
	"anception/internal/vfs"
)

func newTestExecCache(t *testing.T) (*ExecCache, *vfs.FileSystem) {
	t.Helper()
	fs := vfs.New()
	ec, err := NewExecCache(fs)
	if err != nil {
		t.Fatal(err)
	}
	return ec, fs
}

var system = abi.Cred{UID: abi.UIDRoot}

func TestExecCachePlaceAndContains(t *testing.T) {
	ec, fs := newTestExecCache(t)
	dst, err := ec.Place(1001, "/data/data/com.x/bin/tool", []byte("#!payload"))
	if err != nil {
		t.Fatal(err)
	}
	if !ec.Contains(dst) || ec.Len() != 1 {
		t.Fatalf("placed binary not tracked: contains=%v len=%d", ec.Contains(dst), ec.Len())
	}
	got, err := fs.ReadFile(system, dst)
	if err != nil || !bytes.Equal(got, []byte("#!payload")) {
		t.Fatalf("cached binary content: %q err=%v", got, err)
	}
}

func TestExecCacheEvictsOldestBeyondMax(t *testing.T) {
	ec, fs := newTestExecCache(t)
	first, err := ec.Place(1001, "/tmp/bin0", []byte("b0"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= MaxExecCacheEntries; i++ {
		if _, err := ec.Place(1001, fmt.Sprintf("/tmp/bin%d", i), []byte("b")); err != nil {
			t.Fatal(err)
		}
	}
	if ec.Len() != MaxExecCacheEntries {
		t.Fatalf("len = %d, want bounded at %d", ec.Len(), MaxExecCacheEntries)
	}
	if ec.Contains(first) {
		t.Fatal("oldest entry must be evicted")
	}
	// Eviction removes the binary from the protected directory too.
	if _, err := fs.ReadFile(system, first); !errors.Is(err, abi.ENOENT) {
		t.Fatalf("evicted binary still on host fs: err=%v", err)
	}
}

func TestExecCacheReplaceRefreshesRankAndContents(t *testing.T) {
	ec, fs := newTestExecCache(t)
	keep, err := ec.Place(1001, "/tmp/keep", []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < MaxExecCacheEntries-1; i++ {
		if _, err := ec.Place(1001, fmt.Sprintf("/tmp/f%d", i), []byte("f")); err != nil {
			t.Fatal(err)
		}
	}
	// Re-place the oldest entry: its contents update and it moves to the
	// front, so the next overflow evicts f0 instead.
	if _, err := ec.Place(1001, "/tmp/keep", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if ec.Len() != MaxExecCacheEntries {
		t.Fatalf("re-place must not grow the cache: len=%d", ec.Len())
	}
	if _, err := ec.Place(1001, "/tmp/overflow", []byte("o")); err != nil {
		t.Fatal(err)
	}
	if !ec.Contains(keep) {
		t.Fatal("refreshed entry must survive the next eviction")
	}
	got, err := fs.ReadFile(system, keep)
	if err != nil || !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("re-place must overwrite contents: %q err=%v", got, err)
	}
}

func TestExecCachePerUIDDirectories(t *testing.T) {
	ec, _ := newTestExecCache(t)
	a, err := ec.Place(1001, "/tmp/tool", []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ec.Place(1002, "/tmp/tool", []byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatalf("same basename for different UIDs must not collide: %s", a)
	}
	if ec.Len() != 2 {
		t.Fatalf("len = %d, want 2", ec.Len())
	}
}
