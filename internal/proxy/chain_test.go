package proxy

import (
	"errors"
	"testing"
	"time"

	"anception/internal/abi"
	"anception/internal/kernel"
	"anception/internal/marshal"
	"anception/internal/sim"
)

func newChainRig(t *testing.T) (*Manager, *kernel.Task) {
	t.Helper()
	guest, clock := newGuestKernel(t)
	m := NewManager(guest, clock, sim.DefaultLatencyModel(), nil)
	host := newTaskFactory(t).hostTask()
	p, err := m.Ensure(host)
	if err != nil {
		t.Fatal(err)
	}
	return m, p
}

// seedFile writes content into the guest fs through the proxy, so chain
// tests read real data back.
func seedFile(t *testing.T, m *Manager, p *kernel.Task, path string, content []byte) {
	t.Helper()
	open := m.Execute(p, kernel.Args{Nr: abi.SysOpen, Path: path, Flags: abi.OWrOnly | abi.OCreat, Mode: 0o600})
	if !open.Ok() {
		t.Fatalf("seed open: %v", open.Err)
	}
	fd := open.FD
	if fd <= 0 {
		fd = int(open.Ret)
	}
	if res := m.Execute(p, kernel.Args{Nr: abi.SysWrite, FD: fd, Buf: content}); !res.Ok() {
		t.Fatalf("seed write: %v", res.Err)
	}
	if res := m.Execute(p, kernel.Args{Nr: abi.SysClose, FD: fd}); !res.Ok() {
		t.Fatalf("seed close: %v", res.Err)
	}
}

// TestExecuteChainBindings: the canonical open→fstat→read→close chain,
// with every later link taking its descriptor from link 0 and the read
// link riding the cursor.
func TestExecuteChainBindings(t *testing.T) {
	m, p := newChainRig(t)
	content := []byte("linked submissions execute guest-side")
	seedFile(t, m, p, "/data/data/app/blob", content)

	cr := m.ExecuteChainDrained(p, []marshal.ChainLink{
		{Args: &kernel.Args{Nr: abi.SysOpen, Path: "/data/data/app/blob", Flags: abi.ORdOnly}, FDFrom: -1},
		{Args: &kernel.Args{Nr: abi.SysFstat}, FDFrom: 0},
		{Args: &kernel.Args{Nr: abi.SysPread64, Size: len(content)}, FDFrom: 0, UseCursor: true},
		{Args: &kernel.Args{Nr: abi.SysClose}, FDFrom: 0},
	})
	if cr.Executed != 4 {
		t.Fatalf("executed %d links, want 4", cr.Executed)
	}
	for i, res := range cr.Results {
		if !res.Ok() {
			t.Fatalf("link %d failed: %v", i, res.Err)
		}
	}
	if got := cr.Results[2].Data; string(got) != string(content) {
		t.Fatalf("chained read returned %q, want %q", got, content)
	}
	if cr.Results[1].Ret != int64(len(content)) {
		t.Fatalf("chained fstat size %d, want %d", cr.Results[1].Ret, len(content))
	}
}

// TestExecuteChainCursor: consecutive cursor reads walk the file without
// any host-visible offset bookkeeping between links.
func TestExecuteChainCursor(t *testing.T) {
	m, p := newChainRig(t)
	seedFile(t, m, p, "/data/data/app/cursor", []byte("0123456789abcdef"))

	cr := m.ExecuteChainDrained(p, []marshal.ChainLink{
		{Args: &kernel.Args{Nr: abi.SysOpen, Path: "/data/data/app/cursor", Flags: abi.ORdOnly}, FDFrom: -1},
		{Args: &kernel.Args{Nr: abi.SysPread64, Size: 6}, FDFrom: 0, UseCursor: true},
		{Args: &kernel.Args{Nr: abi.SysPread64, Size: 6}, FDFrom: 0, UseCursor: true},
		{Args: &kernel.Args{Nr: abi.SysPread64, Size: 6}, FDFrom: 0, UseCursor: true},
		{Args: &kernel.Args{Nr: abi.SysClose}, FDFrom: 0},
	})
	if cr.Executed != 5 {
		t.Fatalf("executed %d links, want 5", cr.Executed)
	}
	got := string(cr.Results[1].Data) + string(cr.Results[2].Data) + string(cr.Results[3].Data)
	if got != "0123456789abcdef" {
		t.Fatalf("cursor reads produced %q", got)
	}
	if cr.Results[3].Ret != 4 {
		t.Fatalf("final slice read %d bytes, want the 4-byte tail", cr.Results[3].Ret)
	}
}

// TestExecuteChainShortCircuit: a failed link stops the chain and stamps
// its errno on every link that never ran.
func TestExecuteChainShortCircuit(t *testing.T) {
	m, p := newChainRig(t)
	cr := m.ExecuteChainDrained(p, []marshal.ChainLink{
		{Args: &kernel.Args{Nr: abi.SysOpen, Path: "/data/data/app/missing", Flags: abi.ORdOnly}, FDFrom: -1},
		{Args: &kernel.Args{Nr: abi.SysFstat}, FDFrom: 0},
		{Args: &kernel.Args{Nr: abi.SysClose}, FDFrom: 0},
	})
	if cr.Executed != 1 {
		t.Fatalf("executed %d links, want 1 (the failing open)", cr.Executed)
	}
	for i := 0; i < 3; i++ {
		var errno abi.Errno
		if !errors.As(cr.Results[i].Err, &errno) || errno != abi.ENOENT {
			t.Fatalf("link %d: err %v, want ENOENT", i, cr.Results[i].Err)
		}
	}
}

// TestExecuteChainGuestDeathMidChain: a CVM panic between links fails the
// remaining links EHOSTDOWN while the executed prefix keeps its results.
func TestExecuteChainGuestDeathMidChain(t *testing.T) {
	m, p := newChainRig(t)
	seedFile(t, m, p, "/data/data/app/doomed", []byte("half"))
	m.SetChainStep(func(next int) {
		if next == 2 {
			m.guest.Panic("drill: killed between links 1 and 2")
		}
	})
	defer m.SetChainStep(nil)

	cr := m.ExecuteChainDrained(p, []marshal.ChainLink{
		{Args: &kernel.Args{Nr: abi.SysOpen, Path: "/data/data/app/doomed", Flags: abi.ORdOnly}, FDFrom: -1},
		{Args: &kernel.Args{Nr: abi.SysFstat}, FDFrom: 0},
		{Args: &kernel.Args{Nr: abi.SysPread64, Size: 4}, FDFrom: 0, UseCursor: true},
		{Args: &kernel.Args{Nr: abi.SysClose}, FDFrom: 0},
	})
	if cr.Executed != 2 {
		t.Fatalf("executed %d links, want 2", cr.Executed)
	}
	for i := 0; i < 2; i++ {
		if !cr.Results[i].Ok() {
			t.Fatalf("pre-kill link %d failed: %v", i, cr.Results[i].Err)
		}
	}
	for i := 2; i < 4; i++ {
		var errno abi.Errno
		if !errors.As(cr.Results[i].Err, &errno) || errno != abi.EHOSTDOWN {
			t.Fatalf("post-kill link %d: err %v, want EHOSTDOWN", i, cr.Results[i].Err)
		}
	}
}

// TestPoolChainNotSerializedBehindOtherFD: a fused chain is keyed on its
// first-link descriptor, so an unrelated chain on another descriptor must
// run while the first chain's worker is parked — the regression guard for
// per-descriptor FIFO sharding of whole chains.
func TestPoolChainNotSerializedBehindOtherFD(t *testing.T) {
	ring, pool, _ := newPoolRig(t, 16, 4)
	pool.Start()

	chainFrame := func(fd int) []byte {
		return marshal.EncodeChain([]marshal.ChainLink{
			{Args: &kernel.Args{Nr: abi.SysFstat, FD: fd}, FDFrom: -1},
			{Args: &kernel.Args{Nr: abi.SysClose}, FDFrom: 0},
		})
	}

	gate := make(chan struct{})
	// Chain on fd 5 (shard 1 of 4) parks its worker.
	blocked, err := ring.Submit(chainFrame(5), 5, func(req []byte) []byte {
		<-gate
		return req
	})
	if err != nil {
		t.Fatal(err)
	}
	// Unrelated chain on fd 6 (shard 2 of 4) must not queue behind it.
	free, err := ring.Submit(chainFrame(6), 6, func(req []byte) []byte { return req })
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := free.Wait()
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("chain on fd 6 serialized behind the parked chain on fd 5")
	}

	close(gate)
	if _, err := blocked.Wait(); err != nil {
		t.Fatal(err)
	}
}
