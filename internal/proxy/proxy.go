// Package proxy implements the CVM side of Anception's split execution: a
// lightweight proxy process per host app (Figure 3) that holds the app's
// delegated resources (files, sockets) inside the container, carries the
// same security credentials as its host counterpart, and executes
// forwarded system calls from guest kernel space.
//
// The manager maintains the host-task -> proxy bijection across fork,
// exec, credential changes, and exit.
package proxy

import (
	"fmt"
	"sync"
	"time"

	"anception/internal/abi"
	"anception/internal/kernel"
	"anception/internal/sim"
)

// FootprintPages is the resident size of one proxy. A proxy is much
// smaller than its host process (Section VI-C): it needs no app code or
// heap, only kernel bookkeeping and a small guest-side stack.
const FootprintPages = 24

// Manager owns the proxies inside one CVM's guest kernel.
type Manager struct {
	guest *kernel.Kernel
	model sim.LatencyModel
	clock *sim.Clock
	trace *sim.Trace

	// naiveDispatch switches to the unoptimized 4-context-switch wakeup
	// path (ablation A3).
	naiveDispatch bool

	mu        sync.Mutex
	byHostPID map[int]*kernel.Task
	// chainStep, when set, is invoked before each link of a fused chain
	// executes (fault-drill instrumentation; see SetChainStep).
	chainStep func(next int)
}

// NewManager creates an empty proxy manager for the given guest kernel.
func NewManager(guest *kernel.Kernel, clock *sim.Clock, model sim.LatencyModel, trace *sim.Trace) *Manager {
	return &Manager{
		guest:     guest,
		clock:     clock,
		model:     model,
		trace:     trace,
		byHostPID: make(map[int]*kernel.Task),
	}
}

// SetNaiveDispatch toggles the unoptimized dispatch path (ablation A3).
func (m *Manager) SetNaiveDispatch(naive bool) { m.naiveDispatch = naive }

// Ensure returns the proxy for a host task, creating it on first use (app
// enrollment). The proxy receives the host task's credentials, umask and
// working directory, so the CVM's permission checks replicate the host's.
func (m *Manager) Ensure(host *kernel.Task) (*kernel.Task, error) {
	m.mu.Lock()
	if p, ok := m.byHostPID[host.PID]; ok {
		m.mu.Unlock()
		return p, nil
	}
	m.mu.Unlock()

	// A panicked guest cannot enroll proxies: fail with the distinct
	// "container dead" errno rather than spawning into a dead kernel.
	if m.guest.Panicked() != "" {
		return nil, fmt.Errorf("proxy for pid %d: container down: %w", host.PID, abi.EHOSTDOWN)
	}

	p := m.guest.Spawn(host.Cred, host.Comm+":proxy")
	p.Umask = host.Umask
	p.CWD = host.CWD
	// The proxy sleeps in guest kernel space awaiting forwarded calls;
	// its user footprint is a small fixed mapping.
	if _, err := p.AS.MapAnon(FootprintPages, kernel.ProtRead|kernel.ProtWrite, kernel.VMAAnon, "proxy"); err != nil {
		return nil, fmt.Errorf("proxy for pid %d: %w", host.PID, err)
	}

	m.mu.Lock()
	m.byHostPID[host.PID] = p
	m.mu.Unlock()
	if m.trace != nil {
		m.trace.Record(sim.EvLifecycle, "proxy created: host pid=%d -> guest pid=%d uid=%d", host.PID, p.PID, p.Cred.UID)
	}
	return p, nil
}

// ProxyFor returns the existing proxy for a host PID, or nil.
func (m *Manager) ProxyFor(hostPID int) *kernel.Task {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.byHostPID[hostPID]
}

// Execute runs one forwarded call in the proxy's context. The proxy is
// already waiting in guest kernel space, so dispatch costs a single
// in-kernel handoff rather than four context switches (Section IV-3).
func (m *Manager) Execute(proxy *kernel.Task, args kernel.Args) kernel.Result {
	if m.naiveDispatch {
		m.clock.Advance(m.model.ProxyDispatch + 4*m.model.GuestContextSwitch)
	} else {
		m.clock.Advance(m.model.ProxyDispatch)
	}
	// Guest-side trap entry for the call itself.
	m.clock.Advance(m.model.SyscallEntry)
	return m.guest.InvokeLocal(proxy, args)
}

// ExecuteBatch runs several forwarded calls in the proxy's context off a
// single wakeup: the proxy is dispatched once for the whole batch (the
// redirection cache's coalesced flush path), then each call pays only its
// own guest-side trap entry. The result slice is always fully populated,
// one entry per call; the error additionally identifies the first call
// that failed, so batch callers cannot mistake a mid-batch failure for
// success by looking only at the slice length.
func (m *Manager) ExecuteBatch(proxy *kernel.Task, calls []*kernel.Args) ([]kernel.Result, error) {
	if m.naiveDispatch {
		m.clock.Advance(m.model.ProxyDispatch + 4*m.model.GuestContextSwitch)
	} else {
		m.clock.Advance(m.model.ProxyDispatch)
	}
	return m.runCalls(proxy, calls)
}

// ExecuteDrained runs one forwarded call whose proxy dispatch was already
// paid: the ring worker pool charges one ProxyDispatch per wakeup and then
// drains every queued submission, so each drained call costs only its
// guest-side trap entry (the guest half of doorbell coalescing).
func (m *Manager) ExecuteDrained(proxy *kernel.Task, args kernel.Args) kernel.Result {
	m.clock.Advance(m.model.SyscallEntry)
	return m.guest.InvokeLocal(proxy, args)
}

// ExecuteBatchDrained is ExecuteBatch without the dispatch charge, for
// batches arriving through the ring (the pool already paid the wakeup).
func (m *Manager) ExecuteBatchDrained(proxy *kernel.Task, calls []*kernel.Args) ([]kernel.Result, error) {
	return m.runCalls(proxy, calls)
}

// runCalls executes a call vector, charging per-call trap entries and
// attributing the first failure to its position in the batch.
func (m *Manager) runCalls(proxy *kernel.Task, calls []*kernel.Args) ([]kernel.Result, error) {
	results := make([]kernel.Result, len(calls))
	var firstErr error
	for i, a := range calls {
		m.clock.Advance(m.model.SyscallEntry)
		results[i] = m.guest.InvokeLocal(proxy, *a)
		if !results[i].Ok() && firstErr == nil {
			firstErr = fmt.Errorf("batch call %d (%s): %w", i, a.Nr, results[i].Err)
		}
	}
	return results, firstErr
}

// MirrorFork creates the proxy for a freshly forked host child by forking
// the parent's proxy, so the child's delegated descriptors exist in the
// container exactly as the parent's did.
func (m *Manager) MirrorFork(parentHostPID int, child *kernel.Task) (*kernel.Task, error) {
	m.mu.Lock()
	parentProxy := m.byHostPID[parentHostPID]
	m.mu.Unlock()
	if parentProxy == nil {
		// Parent never touched the CVM; enroll the child fresh.
		return m.Ensure(child)
	}
	res := m.guest.InvokeLocal(parentProxy, kernel.Args{Nr: abi.SysFork})
	if !res.Ok() {
		return nil, fmt.Errorf("mirror fork for host pid %d: %w", child.PID, res.Err)
	}
	childProxy := m.guest.Task(int(res.Ret))
	childProxy.Comm = child.Comm + ":proxy"
	m.mu.Lock()
	m.byHostPID[child.PID] = childProxy
	m.mu.Unlock()
	if m.trace != nil {
		m.trace.Record(sim.EvLifecycle, "proxy forked: host pid=%d -> guest pid=%d", child.PID, childProxy.PID)
	}
	return childProxy, nil
}

// MirrorCred propagates a host credential change to the proxy. The paper's
// footnote 3: an app that changes its UID after launch is killed — that
// enforcement happens in the Anception layer; the manager only mirrors.
func (m *Manager) MirrorCred(hostPID int, cred abi.Cred) {
	if p := m.ProxyFor(hostPID); p != nil {
		p.Cred.UID = cred.UID
		p.Cred.GID = cred.GID
	}
}

// MirrorChdir propagates a working-directory change.
func (m *Manager) MirrorChdir(hostPID int, cwd string) {
	if p := m.ProxyFor(hostPID); p != nil {
		p.CWD = cwd
	}
}

// MirrorUmask propagates a umask change.
func (m *Manager) MirrorUmask(hostPID int, umask abi.FileMode) {
	if p := m.ProxyFor(hostPID); p != nil {
		p.Umask = umask
	}
}

// MirrorExit tears down the proxy when its host task exits.
func (m *Manager) MirrorExit(hostPID int) {
	m.mu.Lock()
	p := m.byHostPID[hostPID]
	delete(m.byHostPID, hostPID)
	m.mu.Unlock()
	if p == nil {
		return
	}
	p.SetState(kernel.TaskDead)
	if p.AS != nil {
		p.AS.Release()
	}
	if m.trace != nil {
		m.trace.Record(sim.EvLifecycle, "proxy reaped: host pid=%d guest pid=%d", hostPID, p.PID)
	}
}

// Count reports the number of live proxies.
func (m *Manager) Count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.byHostPID)
}

// VerifyBijection checks the credential-mirror invariant from DESIGN.md:
// every enrolled host task has exactly one live proxy with matching
// UID/GID, umask and cwd. It returns the first violation found.
func (m *Manager) VerifyBijection(hostTasks []*kernel.Task) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := make(map[int]bool)
	for _, h := range hostTasks {
		p, ok := m.byHostPID[h.PID]
		if !ok {
			continue // not enrolled: fine
		}
		if seen[p.PID] {
			return fmt.Errorf("proxy guest pid %d bound to two host tasks", p.PID)
		}
		seen[p.PID] = true
		if p.CurrentState() != kernel.TaskRunning {
			return fmt.Errorf("host pid %d: proxy %d not running", h.PID, p.PID)
		}
		if p.Cred.UID != h.Cred.UID || p.Cred.GID != h.Cred.GID {
			return fmt.Errorf("host pid %d: proxy cred %d/%d != host %d/%d",
				h.PID, p.Cred.UID, p.Cred.GID, h.Cred.UID, h.Cred.GID)
		}
		if p.Umask != h.Umask {
			return fmt.Errorf("host pid %d: proxy umask %o != host %o", h.PID, p.Umask, h.Umask)
		}
		if p.CWD != h.CWD {
			return fmt.Errorf("host pid %d: proxy cwd %q != host %q", h.PID, p.CWD, h.CWD)
		}
	}
	return nil
}

// DispatchCost reports the modeled per-call dispatch cost, for the A3
// ablation bench.
func (m *Manager) DispatchCost() time.Duration {
	if m.naiveDispatch {
		return m.model.ProxyDispatch + 4*m.model.GuestContextSwitch
	}
	return m.model.ProxyDispatch
}
