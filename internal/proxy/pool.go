package proxy

import (
	"sync"
	"sync/atomic"

	"anception/internal/marshal"
	"anception/internal/sim"
)

// DefaultPoolWorkers is the per-app proxy worker count when the caller
// passes 0.
const DefaultPoolWorkers = 4

// Pool is the guest half of the asynchronous ring: N proxy workers
// draining the submission queue concurrently, the multi-slot replacement
// for the one-call-at-a-time Execute path. A single dispatcher pops the
// SQ in submission order and shards slots to workers by key, so entries
// sharing a key (the layer keys by file descriptor) retain FIFO order
// while different descriptors overlap freely. Credential/cwd/umask
// mirroring is untouched: every slot's handler executes in the proxy the
// Manager enrolled for its host task, the workers only schedule.
//
// Cost model: a worker charges one ProxyDispatch when a slot arrives
// after its poller has sat idle past RingPollIdle of sim time; slots
// arriving inside that window ride the live poller for free — the guest
// half of doorbell coalescing, mirroring the armed-doorbell window the
// host half uses (one WorldSwitch per doorbell instead of per call).
// Drained calls pay only their guest trap entry, via
// Manager.ExecuteDrained.
type Pool struct {
	ring    *marshal.RingChannel
	clock   *sim.Clock
	model   sim.LatencyModel
	workers int
	queues  []chan *marshal.Pending
	wg      sync.WaitGroup

	// wakeups counts cold starts after a RingPollIdle gap (ProxyDispatch
	// charges); drained counts slots served by a still-hot poller.
	wakeups atomic.Int64
	drained atomic.Int64
}

// PoolStats snapshots the pool's scheduling counters.
type PoolStats struct {
	Workers int
	// Wakeups is how many times a worker restarted a cold poller (one
	// ProxyDispatch each); Drained is how many slots rode a poller still
	// inside its RingPollIdle window. Wakeups+Drained equals the slots
	// the pool served.
	Wakeups int
	Drained int
}

// NewPool builds a worker pool over a ring channel. workers <= 0 uses
// DefaultPoolWorkers.
func NewPool(ring *marshal.RingChannel, workers int, clock *sim.Clock, model sim.LatencyModel) *Pool {
	if workers <= 0 {
		workers = DefaultPoolWorkers
	}
	p := &Pool{
		ring:    ring,
		clock:   clock,
		model:   model,
		workers: workers,
		queues:  make([]chan *marshal.Pending, workers),
	}
	for i := range p.queues {
		// Each shard can hold the whole ring, so the dispatcher never
		// blocks behind one slow key.
		p.queues[i] = make(chan *marshal.Pending, ring.Depth())
	}
	return p
}

// Start launches the dispatcher and workers.
func (p *Pool) Start() {
	p.wg.Add(1 + p.workers)
	for _, q := range p.queues {
		go p.worker(q)
	}
	go p.dispatch()
}

// Wait blocks until the dispatcher and all workers exit (after the ring
// is closed and its queue drained).
func (p *Pool) Wait() { p.wg.Wait() }

// Stats snapshots the scheduling counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Workers: p.workers,
		Wakeups: int(p.wakeups.Load()),
		Drained: int(p.drained.Load()),
	}
}

// dispatch pops the SQ in submission order and shards by key; the single
// popper plus per-worker FIFO queues give the per-key ordering guarantee.
func (p *Pool) dispatch() {
	defer func() {
		for _, q := range p.queues {
			close(q)
		}
		p.wg.Done()
	}()
	for {
		s, ok := p.ring.NextSubmission()
		if !ok {
			return
		}
		p.queues[shard(s.Key(), p.workers)] <- s
	}
}

// worker drains one shard. The dispatch charge follows the poller's
// sim-time activity window, not goroutine scheduling: a slot arriving
// while the poller is still hot (within RingPollIdle of its last serve)
// rides the existing dispatch, exactly as ringDoorbell treats an armed
// poller on the host side. Charging per channel-receive instead would
// make the modeled cost depend on wall-clock races between submitters
// and workers.
func (p *Pool) worker(q chan *marshal.Pending) {
	defer p.wg.Done()
	// Start beyond the poll window so the first slot pays its dispatch.
	lastActive := -marshal.RingPollIdle - 1
	for {
		s, ok := <-q
		if !ok {
			return
		}
		if now := p.clock.Now(); now-lastActive > marshal.RingPollIdle {
			p.clock.Advance(p.model.ProxyDispatch)
			p.wakeups.Add(1)
		} else {
			p.drained.Add(1)
		}
		p.serve(s)
		lastActive = p.clock.Now()
	}
}

// serve executes one slot: fail fast on stale generation or a dead guest
// (the slot still completes — restarts must not leak submissions), else
// run the handler and post the reply.
func (p *Pool) serve(s *marshal.Pending) {
	if p.ring.FailFastIfUnservable(s) {
		return
	}
	p.ring.Complete(s, s.Handler()(s.Payload()))
}

// shard maps a FIFO key to a worker queue.
func shard(key int64, workers int) int {
	if key < 0 {
		key = -key
	}
	return int(key % int64(workers))
}

// KeyForString derives a stable FIFO key from a name (FNV-1a). The binder
// bridge keys ring submissions by service name so transactions to one
// service retain submission order while different services overlap, the
// same way file I/O keys by descriptor.
func KeyForString(name string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	// Fold to a non-negative int64 so shard()'s negation can't overflow
	// on MinInt64.
	return int64(h &^ (1 << 63))
}
