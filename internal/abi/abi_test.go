package abi

import (
	"errors"
	"fmt"
	"testing"
)

func TestErrnoError(t *testing.T) {
	cases := map[Errno]string{
		EPERM:       "operation not permitted",
		ENOENT:      "no such file or directory",
		EACCES:      "permission denied",
		EROFS:       "read-only file system",
		ENOSYS:      "function not implemented",
		ENETUNREACH: "network is unreachable",
		Errno(200):  "errno 200",
	}
	for e, want := range cases {
		if got := e.Error(); got != want {
			t.Errorf("%d.Error() = %q, want %q", int(e), got, want)
		}
	}
}

func TestErrnoMatchesWithErrorsIs(t *testing.T) {
	wrapped := fmt.Errorf("open /x: %w", EACCES)
	if !errors.Is(wrapped, EACCES) {
		t.Fatal("wrapped errno did not match")
	}
	if errors.Is(wrapped, EPERM) {
		t.Fatal("wrong errno matched")
	}
}

func TestErrnoValuesAreLinuxLike(t *testing.T) {
	// Spot-check numeric compatibility with <errno.h> so traces read
	// like real straces.
	if EPERM != 1 || ENOENT != 2 || EACCES != 13 || EINVAL != 22 || EROFS != 30 {
		t.Fatal("errno numbering drifted from Linux")
	}
}

func TestOpenFlagAccessors(t *testing.T) {
	cases := []struct {
		f        OpenFlag
		readable bool
		writable bool
	}{
		{ORdOnly, true, false},
		{OWrOnly, false, true},
		{ORdWr, true, true},
		{OWrOnly | OCreat | OTrunc, false, true},
		{ORdOnly | OAppend, true, false},
	}
	for _, c := range cases {
		if c.f.Readable() != c.readable || c.f.Writable() != c.writable {
			t.Errorf("flags %x: readable=%v writable=%v, want %v/%v",
				c.f, c.f.Readable(), c.f.Writable(), c.readable, c.writable)
		}
	}
	if (OWrOnly | OCreat).AccessMode() != OWrOnly {
		t.Fatal("AccessMode must mask to the low bits")
	}
}

func TestSyscallNames(t *testing.T) {
	cases := map[SyscallNr]string{
		SysOpen:          "open",
		SysRead:          "read",
		SysIoctl:         "ioctl",
		SysSendfile:      "sendfile",
		SysMmap2:         "mmap2",
		SysShmget:        "shmget",
		SysPerfEventOpen: "perf_event_open",
		SyscallNr(9999):  "sys_9999",
	}
	for nr, want := range cases {
		if got := nr.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(nr), got, want)
		}
	}
}

func TestSyscallNumbersMatchARM(t *testing.T) {
	// The implemented numbers follow Linux 3.4 ARM EABI so traces are
	// recognizable.
	if SysExit != 1 || SysRead != 3 || SysWrite != 4 || SysOpen != 5 ||
		SysIoctl != 54 || SysMmap2 != 192 || SysSocket != 281 {
		t.Fatal("syscall numbering drifted from ARM EABI")
	}
}

func TestSyscallNamesUnique(t *testing.T) {
	seen := make(map[string]SyscallNr)
	for nr, name := range sysNames {
		if prev, dup := seen[name]; dup {
			t.Errorf("name %q assigned to both %d and %d", name, prev, nr)
		}
		seen[name] = nr
	}
}

func TestCredRoot(t *testing.T) {
	if !(Cred{UID: UIDRoot}).Root() {
		t.Fatal("uid 0 is root")
	}
	if (Cred{UID: UIDAppBase}).Root() {
		t.Fatal("app uid is not root")
	}
	if (Cred{UID: UIDSystem}).Root() {
		t.Fatal("system uid is not root")
	}
}

func TestWellKnownUIDs(t *testing.T) {
	if UIDRoot != 0 || UIDSystem != 1000 || UIDShell != 2000 || UIDAppBase != 10000 {
		t.Fatal("Android UID constants drifted")
	}
}

func TestPageSize(t *testing.T) {
	if PageSize != 4096 {
		t.Fatal("page size must be 4096 (the paper's chunking unit)")
	}
}

func TestFileModeBits(t *testing.T) {
	if ModeUserR|ModeUserW|ModeUserX != 0o700 {
		t.Fatal("user bits")
	}
	if ModeGroupR|ModeGroupW|ModeGroupX != 0o070 {
		t.Fatal("group bits")
	}
	if ModeOtherR|ModeOtherW|ModeOtherX != 0o007 {
		t.Fatal("other bits")
	}
}
