package abi

// OpenFlag holds open(2)-style flags.
type OpenFlag int

// Open flags understood by the simulated kernel.
const (
	ORdOnly OpenFlag = 0x0
	OWrOnly OpenFlag = 0x1
	ORdWr   OpenFlag = 0x2

	OCreat  OpenFlag = 0x40
	OExcl   OpenFlag = 0x80
	OTrunc  OpenFlag = 0x200
	OAppend OpenFlag = 0x400
)

// AccessMode extracts the read/write mode bits.
func (f OpenFlag) AccessMode() OpenFlag { return f & 0x3 }

// Readable reports whether the flags request read access.
func (f OpenFlag) Readable() bool { return f.AccessMode() == ORdOnly || f.AccessMode() == ORdWr }

// Writable reports whether the flags request write access.
func (f OpenFlag) Writable() bool { return f.AccessMode() == OWrOnly || f.AccessMode() == ORdWr }

// FileMode holds Unix permission bits (the low 12 bits; no sticky/setid
// semantics are modeled beyond storage of the bits).
type FileMode int

// Permission bit groups.
const (
	ModeUserR  FileMode = 0o400
	ModeUserW  FileMode = 0o200
	ModeUserX  FileMode = 0o100
	ModeGroupR FileMode = 0o040
	ModeGroupW FileMode = 0o020
	ModeGroupX FileMode = 0o010
	ModeOtherR FileMode = 0o004
	ModeOtherW FileMode = 0o002
	ModeOtherX FileMode = 0o001
)

// Whence values for lseek.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// Access bits for the access/permission check primitives.
const (
	AccessRead  = 4
	AccessWrite = 2
	AccessExec  = 1
)

// PageSize is the page size of the simulated device and the fixed chunk
// size of the host-to-container data channel (Section IV-1, footnote 7).
const PageSize = 4096

// Well-known UIDs of the Android security model.
const (
	UIDRoot    = 0
	UIDSystem  = 1000
	UIDShell   = 2000
	UIDAppBase = 10000 // first installed-app UID
)

// Signal numbers used by the simulation.
const (
	SIGKILL = 9
	SIGTERM = 15
	SIGSEGV = 11
)
