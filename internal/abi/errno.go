// Package abi defines the system-call ABI of the simulated device: errno
// values, open flags, file modes, and the system-call number table whose
// classification Section V-D of the paper analyzes.
package abi

import "fmt"

// Errno is a Unix-style error number. It implements error so kernel and
// service code can return it directly; callers match with errors.Is.
type Errno int

// Errno values used by the simulated kernel. The numeric values follow
// Linux on ARM where it matters for readability of traces.
const (
	EPERM   Errno = 1  // operation not permitted
	ENOENT  Errno = 2  // no such file or directory
	ESRCH   Errno = 3  // no such process
	EINTR   Errno = 4  // interrupted system call
	EIO     Errno = 5  // I/O error
	ENXIO   Errno = 6  // no such device or address
	E2BIG   Errno = 7  // argument list too long
	EBADF   Errno = 9  // bad file descriptor
	ECHILD  Errno = 10 // no child processes
	EAGAIN  Errno = 11 // try again
	ENOMEM  Errno = 12 // out of memory
	EACCES  Errno = 13 // permission denied
	EFAULT  Errno = 14 // bad address
	EBUSY   Errno = 16 // device or resource busy
	EEXIST  Errno = 17 // file exists
	EXDEV   Errno = 18 // cross-device link
	ENODEV  Errno = 19 // no such device
	ENOTDIR Errno = 20 // not a directory
	EISDIR  Errno = 21 // is a directory
	EINVAL  Errno = 22 // invalid argument
	ENFILE  Errno = 23 // file table overflow
	EMFILE  Errno = 24 // too many open files
	ENOTTY  Errno = 25 // not a typewriter
	EFBIG   Errno = 27 // file too large
	ENOSPC  Errno = 28 // no space left on device
	ESPIPE  Errno = 29 // illegal seek
	EROFS   Errno = 30 // read-only file system
	EMLINK  Errno = 31 // too many links
	EPIPE   Errno = 32 // broken pipe
	ERANGE  Errno = 34 // result out of range
	ELOOP   Errno = 40 // too many symbolic links
	ENOSYS  Errno = 38 // function not implemented

	ENOTSOCK    Errno = 88  // socket operation on non-socket
	EMSGSIZE    Errno = 90  // message too long
	EOPNOTSUPP  Errno = 95  // operation not supported
	EADDRINUSE  Errno = 98  // address already in use
	ENETUNREACH Errno = 101 // network is unreachable
	ETIMEDOUT   Errno = 110 // connection timed out
	EHOSTDOWN   Errno = 112 // host is down
	ESTALE      Errno = 116 // stale file handle
)

// Error implements the error interface with the strerror text.
func (e Errno) Error() string {
	if name, ok := errnoNames[e]; ok {
		return name
	}
	return fmt.Sprintf("errno %d", int(e))
}

var errnoNames = map[Errno]string{
	EPERM:   "operation not permitted",
	ENOENT:  "no such file or directory",
	ESRCH:   "no such process",
	EINTR:   "interrupted system call",
	EIO:     "I/O error",
	ENXIO:   "no such device or address",
	E2BIG:   "argument list too long",
	EBADF:   "bad file descriptor",
	ECHILD:  "no child processes",
	EAGAIN:  "resource temporarily unavailable",
	ENOMEM:  "out of memory",
	EACCES:  "permission denied",
	EFAULT:  "bad address",
	EBUSY:   "device or resource busy",
	EEXIST:  "file exists",
	EXDEV:   "cross-device link",
	ENODEV:  "no such device",
	ENOTDIR: "not a directory",
	EISDIR:  "is a directory",
	EINVAL:  "invalid argument",
	ENFILE:  "file table overflow",
	EMFILE:  "too many open files",
	ENOTTY:  "inappropriate ioctl for device",
	EFBIG:   "file too large",
	ENOSPC:  "no space left on device",
	ESPIPE:  "illegal seek",
	EROFS:   "read-only file system",
	EMLINK:  "too many links",
	EPIPE:   "broken pipe",
	ERANGE:  "result out of range",
	ELOOP:   "too many levels of symbolic links",
	ENOSYS:  "function not implemented",

	ENOTSOCK:    "socket operation on non-socket",
	EMSGSIZE:    "message too long",
	EOPNOTSUPP:  "operation not supported",
	EADDRINUSE:  "address already in use",
	ENETUNREACH: "network is unreachable",
	ETIMEDOUT:   "connection timed out",
	EHOSTDOWN:   "host is down",
	ESTALE:      "stale file handle",
}
