package abi

import "encoding/binary"

// EncodeFDList packs a descriptor list into a little-endian u32 vector.
// Batched accept4 replies carry the accepted guest descriptors this way
// (one ring completion, N connections); epoll_wait replies reuse it for
// ready-descriptor vectors. It lives in abi because both the simulated
// kernel and the anception layer need it and the kernel cannot import
// marshal.
func EncodeFDList(fds []int) []byte {
	out := make([]byte, 4*len(fds))
	for i, fd := range fds {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(fd))
	}
	return out
}

// DecodeFDList unpacks a descriptor vector produced by EncodeFDList.
// A ragged tail (length not a multiple of 4) means a corrupt frame.
func DecodeFDList(b []byte) ([]int, error) {
	if len(b)%4 != 0 {
		return nil, EINVAL
	}
	fds := make([]int, len(b)/4)
	for i := range fds {
		fds[i] = int(int32(binary.LittleEndian.Uint32(b[4*i:])))
	}
	return fds, nil
}
