package abi

// Cred carries the credentials an operation runs with. One shared type is
// used across the VFS, network, binder, and kernel layers so credential
// propagation (host process -> CVM proxy) is a plain copy.
type Cred struct {
	UID int
	GID int
	PID int
}

// Root reports whether the credential bypasses permission checks.
func (c Cred) Root() bool { return c.UID == UIDRoot }
