package abi

import "fmt"

// SyscallNr identifies a system call. The numbering follows Linux 3.4 on
// ARM (EABI) for the calls the simulated kernel implements, so traces read
// like real straces.
type SyscallNr int

// System calls implemented by the simulated kernel. The full 324-entry
// table that Section V-D classifies lives in internal/redirect; entries not
// listed here return ENOSYS when invoked.
const (
	SysExit      SyscallNr = 1
	SysFork      SyscallNr = 2
	SysRead      SyscallNr = 3
	SysWrite     SyscallNr = 4
	SysOpen      SyscallNr = 5
	SysClose     SyscallNr = 6
	SysCreat     SyscallNr = 8
	SysLink      SyscallNr = 9
	SysUnlink    SyscallNr = 10
	SysExecve    SyscallNr = 11
	SysChdir     SyscallNr = 12
	SysMknod     SyscallNr = 14
	SysChmod     SyscallNr = 15
	SysLseek     SyscallNr = 19
	SysGetpid    SyscallNr = 20
	SysMount     SyscallNr = 21
	SysSetuid    SyscallNr = 23
	SysGetuid    SyscallNr = 24
	SysPtrace    SyscallNr = 26
	SysPause     SyscallNr = 29
	SysAccess    SyscallNr = 33
	SysSync      SyscallNr = 36
	SysKill      SyscallNr = 37
	SysRename    SyscallNr = 38
	SysMkdir     SyscallNr = 39
	SysRmdir     SyscallNr = 40
	SysDup       SyscallNr = 41
	SysPipe      SyscallNr = 42
	SysBrk       SyscallNr = 45
	SysSetgid    SyscallNr = 46
	SysGetgid    SyscallNr = 47
	SysGeteuid   SyscallNr = 49
	SysGetegid   SyscallNr = 50
	SysIoctl     SyscallNr = 54
	SysFcntl     SyscallNr = 55
	SysUmask     SyscallNr = 60
	SysDup2      SyscallNr = 63
	SysGetppid   SyscallNr = 64
	SysSigaction SyscallNr = 67
	SysSymlink   SyscallNr = 83
	SysReadlink  SyscallNr = 85
	SysReboot    SyscallNr = 88
	SysMunmap    SyscallNr = 91
	SysTruncate  SyscallNr = 92
	SysFtruncate SyscallNr = 93
	SysFchmod    SyscallNr = 94
	SysFchown    SyscallNr = 95
	SysStatfs    SyscallNr = 99
	SysStat      SyscallNr = 106
	SysFstat     SyscallNr = 108
	SysWait4     SyscallNr = 114
	SysSysinfo   SyscallNr = 116
	SysFsync     SyscallNr = 118
	SysClone     SyscallNr = 120
	SysUname     SyscallNr = 122
	SysMprotect  SyscallNr = 125

	SysInitModule   SyscallNr = 128
	SysDeleteModule SyscallNr = 129
	SysFchdir       SyscallNr = 133
	SysGetdents     SyscallNr = 141
	SysMsync        SyscallNr = 144
	SysReadv        SyscallNr = 145
	SysWritev       SyscallNr = 146
	SysNanosleep    SyscallNr = 162
	SysMremap       SyscallNr = 163
	SysSetresuid    SyscallNr = 164
	SysPoll         SyscallNr = 168
	SysPread64      SyscallNr = 180
	SysPwrite64     SyscallNr = 181
	SysChown        SyscallNr = 182
	SysGetcwd       SyscallNr = 183
	SysSendfile     SyscallNr = 187
	SysVfork        SyscallNr = 190
	SysMmap2        SyscallNr = 192
	SysGettid       SyscallNr = 224
	SysFutex        SyscallNr = 240
	SysExitGroup    SyscallNr = 248
	SysEpollCreate  SyscallNr = 250
	SysEpollCtl     SyscallNr = 251
	SysEpollWait    SyscallNr = 252
	SysClockGettime SyscallNr = 263
	SysTgkill       SyscallNr = 268

	SysSocket        SyscallNr = 281
	SysBind          SyscallNr = 282
	SysConnect       SyscallNr = 283
	SysListen        SyscallNr = 284
	SysAccept        SyscallNr = 285
	SysGetsockname   SyscallNr = 286
	SysGetpeername   SyscallNr = 287
	SysSocketpair    SyscallNr = 288
	SysSend          SyscallNr = 289
	SysSendto        SyscallNr = 290
	SysRecv          SyscallNr = 291
	SysRecvfrom      SyscallNr = 292
	SysShutdownSk    SyscallNr = 293
	SysSetsockopt    SyscallNr = 294
	SysGetsockopt    SyscallNr = 295
	SysShmat         SyscallNr = 305
	SysShmdt         SyscallNr = 306
	SysShmget        SyscallNr = 307
	SysShmctl        SyscallNr = 308
	SysOpenat        SyscallNr = 322
	SysMkdirat       SyscallNr = 323
	SysPreadv        SyscallNr = 361
	SysPwritev       SyscallNr = 362
	SysPerfEventOpen SyscallNr = 364
	SysAccept4       SyscallNr = 366
)

var sysNames = map[SyscallNr]string{
	SysExit: "exit", SysFork: "fork", SysRead: "read", SysWrite: "write",
	SysOpen: "open", SysClose: "close", SysCreat: "creat", SysLink: "link",
	SysUnlink: "unlink", SysExecve: "execve", SysChdir: "chdir",
	SysMknod: "mknod", SysChmod: "chmod", SysLseek: "lseek",
	SysGetpid: "getpid", SysMount: "mount", SysSetuid: "setuid",
	SysGetuid: "getuid", SysPtrace: "ptrace", SysPause: "pause",
	SysAccess: "access", SysSync: "sync", SysKill: "kill",
	SysRename: "rename", SysMkdir: "mkdir", SysRmdir: "rmdir",
	SysDup: "dup", SysPipe: "pipe", SysBrk: "brk", SysSetgid: "setgid",
	SysGetgid: "getgid", SysGeteuid: "geteuid", SysGetegid: "getegid",
	SysIoctl: "ioctl", SysFcntl: "fcntl", SysUmask: "umask",
	SysDup2: "dup2", SysGetppid: "getppid", SysSigaction: "sigaction",
	SysSymlink: "symlink", SysReadlink: "readlink", SysReboot: "reboot",
	SysMunmap: "munmap", SysTruncate: "truncate", SysFtruncate: "ftruncate",
	SysFchmod: "fchmod", SysFchown: "fchown", SysStatfs: "statfs",
	SysStat: "stat", SysFstat: "fstat", SysWait4: "wait4",
	SysSysinfo: "sysinfo", SysFsync: "fsync", SysClone: "clone",
	SysUname: "uname", SysMprotect: "mprotect",
	SysInitModule: "init_module", SysDeleteModule: "delete_module",
	SysFchdir: "fchdir", SysGetdents: "getdents", SysMsync: "msync",
	SysNanosleep: "nanosleep", SysMremap: "mremap",
	SysReadv: "readv", SysWritev: "writev", SysPreadv: "preadv",
	SysPwritev:   "pwritev",
	SysSetresuid: "setresuid", SysPoll: "poll", SysPread64: "pread64",
	SysPwrite64: "pwrite64", SysChown: "chown", SysGetcwd: "getcwd",
	SysSendfile: "sendfile", SysVfork: "vfork", SysMmap2: "mmap2",
	SysGettid: "gettid", SysFutex: "futex", SysExitGroup: "exit_group",
	SysEpollCreate: "epoll_create", SysEpollCtl: "epoll_ctl",
	SysEpollWait:    "epoll_wait",
	SysClockGettime: "clock_gettime", SysTgkill: "tgkill",
	SysSocket: "socket", SysBind: "bind", SysConnect: "connect",
	SysListen: "listen", SysAccept: "accept",
	SysGetsockname: "getsockname", SysGetpeername: "getpeername",
	SysSocketpair: "socketpair", SysSend: "send", SysSendto: "sendto",
	SysRecv: "recv", SysRecvfrom: "recvfrom", SysShutdownSk: "shutdown",
	SysSetsockopt: "setsockopt", SysGetsockopt: "getsockopt",
	SysOpenat: "openat", SysMkdirat: "mkdirat",
	SysShmat: "shmat", SysShmdt: "shmdt", SysShmget: "shmget",
	SysShmctl:        "shmctl",
	SysPerfEventOpen: "perf_event_open",
	SysAccept4:       "accept4",
}

// String returns the syscall's conventional name, or "sys_N" if unknown.
func (n SyscallNr) String() string {
	if s, ok := sysNames[n]; ok {
		return s
	}
	return fmt.Sprintf("sys_%d", int(n))
}
